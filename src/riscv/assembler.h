// RV32IM assembler and static linker.
//
// Two producers feed this module: hand-written assembly (the platform's boot code, plus
// tests) parsed from text by ParseAssembly, and the MiniC compiler, which emits
// AsmInstr items programmatically. Linking produces a flat ROM image plus a symbol
// table; the same image is executed by the abstract machine (Riscette analog) and
// embedded in the SoC ROM, which is exactly the paper's arrangement: one binary, two
// interpretations (section 3, "dual interpretation").
#ifndef PARFAIT_RISCV_ASSEMBLER_H_
#define PARFAIT_RISCV_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/riscv/isa.h"
#include "src/support/bytes.h"
#include "src/support/status.h"

namespace parfait::riscv {

// Relocation kinds for symbolic operands.
enum class Reloc : uint8_t {
  kNone,    // imm is final.
  kBranch,  // B-type pc-relative offset to symbol.
  kJal,     // J-type pc-relative offset to symbol.
  kHi,      // %hi(symbol + addend), compensating for the signed %lo.
  kLo,      // %lo(symbol + addend).
};

struct AsmInstr {
  Instr instr;
  Reloc reloc = Reloc::kNone;
  std::string symbol;
  int32_t addend = 0;
};

enum class Section : uint8_t { kText, kRodata, kData, kBss };

// Symbol classification for the side table. Producers opt in via Program::MarkFunction /
// MarkObject (the MiniC compiler) or `.type name, @function|@object` (hand assembly);
// everything else stays kLabel.
enum class SymbolKind : uint8_t { kLabel, kFunction, kObject };

// One side-table entry: where a symbol landed, how big it is, and what the producer
// said about it. The static analyzer keys CFG recovery (function extents, indirect-jump
// targets) and taint seeding (the "secret" annotation) off this table.
struct SymbolInfo {
  std::string name;
  uint32_t addr = 0;
  // Extent in bytes. Functions span to the next function (or section end); objects use
  // the producer-declared size when given, else the gap to the next label. 0 = unknown.
  uint32_t size = 0;
  Section section = Section::kText;
  SymbolKind kind = SymbolKind::kLabel;
  // Free-form producer annotations (e.g. "secret" from a MiniC storage qualifier).
  std::vector<std::string> annotations;

  bool HasAnnotation(const std::string& a) const;
};

// A linked firmware image.
struct Image {
  uint32_t rom_base = 0;
  uint32_t ram_base = 0;
  // ROM contents: .text, then .rodata, then the load image of .data.
  Bytes rom;
  // Size of the zero-initialized .bss (lives in RAM after .data).
  uint32_t bss_size = 0;
  uint32_t data_size = 0;
  std::map<std::string, uint32_t> symbols;
  // Side table, sorted by (addr, name); covers every label (not layout constants).
  std::vector<SymbolInfo> symbol_table;

  uint32_t SymbolOrDie(const std::string& name) const;
  // Side-table lookup by name; nullptr when absent.
  const SymbolInfo* FindSymbol(const std::string& name) const;
};

// An assembly program under construction (items are appended to the current section).
class Program {
 public:
  void SetSection(Section s) { section_ = s; }
  Section section() const { return section_; }

  // Defines a label at the current position of the current section.
  void DefineLabel(const std::string& name);

  // Defines an absolute symbol (e.g. `.equ STACK_TOP, 0x20010000`).
  void DefineConstant(const std::string& name, uint32_t value);

  // Side-table metadata; may be called before or after the label is defined.
  void MarkFunction(const std::string& name);
  void MarkObject(const std::string& name, uint32_t size);
  void Annotate(const std::string& name, const std::string& annotation);

  void Emit(const AsmInstr& ai);
  void Emit(const Instr& i) { Emit(AsmInstr{i, Reloc::kNone, "", 0}); }

  // Byte offset of the next emission within the current section. Producers that
  // build side tables keyed on code positions (the MiniC compiler's translation
  // witness) record this at emission time; after linking, a .text offset maps to
  // the absolute address rom_base + offset (text is laid out first).
  uint32_t CurrentOffset() const { return SectionSize(section_); }

  // Peephole support: removes and returns the most recent item of the current section
  // if it is a relocation-free instruction and no label points at or past it.
  // Returns std::nullopt (and removes nothing) otherwise.
  std::optional<Instr> PopLastPlainInstr();

  // Data directives (valid in data sections; Zero is the only one valid in .bss).
  void Word(uint32_t value);
  void WordSymbol(const std::string& symbol);  // Absolute 32-bit address of symbol.
  void ByteData(std::span<const uint8_t> data);
  void Zero(uint32_t count);
  void Align(uint32_t alignment);

  // Lays out sections (ROM: text, rodata, data load image; RAM: data, bss), resolves
  // symbols and relocations, and emits the image. Adds the layout symbols __data_lma,
  // __data_start, __data_size, __bss_start, __bss_size.
  Result<Image> Link(uint32_t rom_base, uint32_t ram_base) const;

 private:
  struct Item {
    enum class Kind : uint8_t { kInstr, kWord, kWordSymbol, kBytes, kZero, kAlign } kind;
    AsmInstr instr;
    uint32_t value = 0;
    std::string symbol;
    Bytes bytes;
  };

  struct LabelDef {
    Section section;
    size_t offset;  // Byte offset within the section at definition time.
  };

  struct SymbolMeta {
    SymbolKind kind = SymbolKind::kLabel;
    uint32_t size = 0;
    std::vector<std::string> annotations;
  };

  std::vector<Item>& Items(Section s) { return items_[static_cast<size_t>(s)]; }
  const std::vector<Item>& Items(Section s) const { return items_[static_cast<size_t>(s)]; }
  uint32_t SectionSize(Section s) const;

  Section section_ = Section::kText;
  std::vector<Item> items_[4];
  std::map<std::string, LabelDef> labels_;
  std::map<std::string, uint32_t> constants_;
  std::map<std::string, SymbolMeta> meta_;
};

// Parses textual assembly (labels, RV32IM mnemonics, common pseudo-instructions: nop,
// mv, li, la, j, jr, ret, call, beqz, bnez, not, neg, seqz, snez; directives: .text,
// .rodata, .data, .bss, .globl, .equ, .word, .byte, .zero, .align, %hi()/%lo()).
Result<Program> ParseAssembly(const std::string& source);

}  // namespace parfait::riscv

#endif  // PARFAIT_RISCV_ASSEMBLER_H_
