// IPR by lockstep (section 4.1): when one step of the implementation corresponds to
// exactly one step of the specification, developer-supplied encode/decode functions
// define an implicit emulator, and the lockstep simulation property (figure 6) plus
// the codec correspondences imply IPR.
//
// The Coq development proves that implication once and for all; here the lockstep
// conditions are *checked* (randomized property testing) and the implication is made
// executable: BuildLockstepDriver / BuildLockstepEmulator construct the figure 5
// witnesses from the codecs, so CheckIpr can validate the resulting refinement
// directly (which is how the theory tests confirm the theorem on toy machines).
#ifndef PARFAIT_IPR_LOCKSTEP_H_
#define PARFAIT_IPR_LOCKSTEP_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/ipr/ipr.h"
#include "src/ipr/state_machine.h"
#include "src/support/bytes.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"
#include "src/support/telemetry.h"

namespace parfait::ipr {

// Codec bundle for a lockstep refinement between a typed spec (state SS, commands CH,
// responses RH) and a byte-level implementation machine (state/command/response all
// Bytes).
template <typename SS, typename CH, typename RH>
struct LockstepCodecs {
  std::function<Bytes(const CH&)> encode_command;                 // Driver side.
  std::function<RH(const Bytes&)> decode_response;                // Driver side.
  std::function<std::optional<CH>(const Bytes&)> decode_command;  // Emulator side.
  std::function<Bytes(const std::optional<RH>&)> encode_response; // Emulator side.
  std::function<Bytes(const SS&)> encode_state;                   // Refinement relation.
};

struct LockstepCheckOptions {
  int trials = 128;
  uint64_t seed = 7;
  // Trials shard across this many threads (0 = all hardware threads); every trial
  // draws from its own SplitSeed stream and failures settle on the lowest trial
  // index, so the result is identical at every thread count.
  int num_threads = 0;
};

struct LockstepCheckResult {
  bool ok = true;
  std::string failure;
  // Individual lockstep obligations checked (codec round-trips + figure 6a pairs +
  // figure 6b junk probes), folded in trial-index order up to the settled failure —
  // the same "trials attempted/executed" accounting StarlingReport::checks_run uses.
  int checks_run = 0;
  // ipr/lockstep/* counters, bit-identical at every thread count.
  telemetry::TelemetrySnapshot telemetry;
  // On failure: seed, trial index, and the encoded command/junk bytes to replay it.
  std::optional<telemetry::Evidence> evidence;
};

// Checks the lockstep conditions:
//  (1) decode_command ∘ encode_command = Some        (codec correspondence)
//  (2) figure 6(a): on decodable low-level inputs, impl and spec step in lockstep
//      through encode_state / encode_response
//  (3) figure 6(b): on undecodable inputs, the impl state is unchanged and the
//      response is encode_response(None)
// gen_state/gen_high generate random spec states and commands; gen_junk generates
// low-level inputs (some decodable, some not).
template <typename SS, typename CH, typename RH>
LockstepCheckResult CheckLockstep(
    const StateMachine<Bytes, Bytes, Bytes>& impl, const StateMachine<SS, CH, RH>& spec,
    const LockstepCodecs<SS, CH, RH>& codecs, const std::function<SS(Rng&)>& gen_state,
    const std::function<CH(Rng&)>& gen_high, const std::function<Bytes(Rng&)>& gen_junk,
    const std::function<std::string(const CH&)>& show_high,
    const LockstepCheckOptions& options = {}) {
  // One trial's outcome: the failure message (empty = passed), per-obligation check
  // counts for the telemetry fold, and the raw bytes that reproduce a failure.
  struct Trial {
    std::string failure;
    int codec_checks = 0;
    int fig6a_checks = 0;
    int fig6b_checks = 0;
    Bytes encoded_command;  // Filled on failure.
    Bytes junk;             // Filled on a figure 6(b) failure.
  };

  // One trial, against its own deterministic RNG stream.
  auto run_trial = [&](Rng& rng) -> Trial {
    TELEMETRY_SPAN("ipr/lockstep_trial");
    Trial trial;
    // (1) Codec correspondence.
    CH command = gen_high(rng);
    Bytes encoded = codecs.encode_command(command);
    auto decoded = codecs.decode_command(encoded);
    trial.codec_checks++;
    if (!decoded.has_value() || show_high(*decoded) != show_high(command)) {
      trial.failure = "decode_command is not a left inverse of encode_command for " +
                      show_high(command);
      trial.encoded_command = encoded;
      return trial;
    }
    // (2) Figure 6(a) on a random related state pair.
    SS spec_state = gen_state(rng);
    Bytes impl_state = codecs.encode_state(spec_state);
    auto [impl_next, impl_out] = impl.step(impl_state, encoded);
    auto [spec_next, spec_out] = spec.step(spec_state, command);
    trial.fig6a_checks++;
    if (impl_next != codecs.encode_state(spec_next)) {
      trial.failure = "post-states diverge (figure 6a) for " + show_high(command);
      trial.encoded_command = encoded;
      return trial;
    }
    if (impl_out != codecs.encode_response(std::optional<RH>(spec_out))) {
      trial.failure = "responses diverge (figure 6a) for " + show_high(command);
      trial.encoded_command = encoded;
      return trial;
    }
    // (3) Figure 6(b) on junk input.
    Bytes junk = gen_junk(rng);
    if (!codecs.decode_command(junk).has_value()) {
      auto [junk_next, junk_out] = impl.step(impl_state, junk);
      trial.fig6b_checks++;
      if (junk_next != impl_state) {
        trial.failure = "state changed on an undecodable command (figure 6b)";
      } else if (junk_out != codecs.encode_response(std::nullopt)) {
        trial.failure = "non-canonical response to an undecodable command (figure 6b)";
      }
      if (!trial.failure.empty()) {
        trial.encoded_command = encoded;
        trial.junk = junk;
      }
    }
    return trial;
  };

  size_t trials = options.trials > 0 ? options.trials : 0;
  ThreadPool pool(options.num_threads);
  auto outcome = ParallelReduce<Trial>(
      pool, trials,
      [&](size_t trial) {
        Rng rng(SplitSeed(options.seed, trial));
        return run_trial(rng);
      },
      [](const Trial& trial) { return !trial.failure.empty(); });

  // Index-ordered fold over the trials that count (everything at or below the settled
  // lowest failure), mirroring starling::CheckApp.
  LockstepCheckResult result;
  size_t last = outcome.first_failure.value_or(trials == 0 ? 0 : trials - 1);
  for (size_t i = 0; i < trials && i <= last; i++) {
    if (!outcome.results[i].has_value()) {
      continue;
    }
    const Trial& trial = *outcome.results[i];
    int checks = trial.codec_checks + trial.fig6a_checks + trial.fig6b_checks;
    result.checks_run += checks;
    result.telemetry.AddCounter("ipr/lockstep/trials", 1);
    result.telemetry.AddCounter("ipr/lockstep/codec_checks", trial.codec_checks);
    result.telemetry.AddCounter("ipr/lockstep/fig6a_checks", trial.fig6a_checks);
    result.telemetry.AddCounter("ipr/lockstep/fig6b_checks", trial.fig6b_checks);
    result.telemetry.RecordValue("ipr/lockstep/checks_per_trial", checks);
  }
  if (outcome.first_failure.has_value()) {
    size_t f = *outcome.first_failure;
    const Trial& failing = *outcome.results[f];
    result.ok = false;
    result.failure = failing.failure;
    telemetry::Evidence evidence;
    evidence.checker = "ipr/lockstep";
    evidence.Add("seed", options.seed);
    evidence.Add("trial_index", f);
    evidence.Add("trial_seed", SplitSeed(options.seed, f));
    evidence.Add("encoded_command_hex", ToHex(failing.encoded_command));
    if (!failing.junk.empty()) {
      evidence.Add("junk_hex", ToHex(failing.junk));
    }
    evidence.Add("failure", failing.failure);
    result.evidence = evidence;
    telemetry::Telemetry::Global().RecordEvidence(evidence);
  }
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

// The driver implied by the codecs: encode, one low-level step, decode.
template <typename SS, typename CH, typename RH>
Driver<CH, RH, Bytes, Bytes> BuildLockstepDriver(const LockstepCodecs<SS, CH, RH>& codecs) {
  return [codecs](const CH& command, const std::function<Bytes(const Bytes&)>& lowop) {
    return codecs.decode_response(lowop(codecs.encode_command(command)));
  };
}

// The implicit emulator: decode the low-level input; if it denotes a spec command,
// query the spec and encode the response; otherwise answer encode_response(None).
template <typename SS, typename CH, typename RH>
EmulatorFactory<Bytes, Bytes, CH, RH> BuildLockstepEmulator(
    const LockstepCodecs<SS, CH, RH>& codecs) {
  class LockstepEmulator final : public Emulator<Bytes, Bytes, CH, RH> {
   public:
    explicit LockstepEmulator(const LockstepCodecs<SS, CH, RH>& codecs) : codecs_(codecs) {}
    Bytes OnCommand(const Bytes& command,
                    const std::function<RH(const CH&)>& spec) override {
      auto decoded = codecs_.decode_command(command);
      if (!decoded.has_value()) {
        return codecs_.encode_response(std::nullopt);
      }
      return codecs_.encode_response(std::optional<RH>(spec(*decoded)));
    }

   private:
    LockstepCodecs<SS, CH, RH> codecs_;
  };
  return [codecs]() { return std::make_unique<LockstepEmulator>(codecs); };
}

}  // namespace parfait::ipr

#endif  // PARFAIT_IPR_LOCKSTEP_H_
