// IPR by lockstep (section 4.1): when one step of the implementation corresponds to
// exactly one step of the specification, developer-supplied encode/decode functions
// define an implicit emulator, and the lockstep simulation property (figure 6) plus
// the codec correspondences imply IPR.
//
// The Coq development proves that implication once and for all; here the lockstep
// conditions are *checked* (randomized property testing) and the implication is made
// executable: BuildLockstepDriver / BuildLockstepEmulator construct the figure 5
// witnesses from the codecs, so CheckIpr can validate the resulting refinement
// directly (which is how the theory tests confirm the theorem on toy machines).
#ifndef PARFAIT_IPR_LOCKSTEP_H_
#define PARFAIT_IPR_LOCKSTEP_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/ipr/ipr.h"
#include "src/ipr/state_machine.h"
#include "src/support/bytes.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"

namespace parfait::ipr {

// Codec bundle for a lockstep refinement between a typed spec (state SS, commands CH,
// responses RH) and a byte-level implementation machine (state/command/response all
// Bytes).
template <typename SS, typename CH, typename RH>
struct LockstepCodecs {
  std::function<Bytes(const CH&)> encode_command;                 // Driver side.
  std::function<RH(const Bytes&)> decode_response;                // Driver side.
  std::function<std::optional<CH>(const Bytes&)> decode_command;  // Emulator side.
  std::function<Bytes(const std::optional<RH>&)> encode_response; // Emulator side.
  std::function<Bytes(const SS&)> encode_state;                   // Refinement relation.
};

struct LockstepCheckOptions {
  int trials = 128;
  uint64_t seed = 7;
  // Trials shard across this many threads (0 = all hardware threads); every trial
  // draws from its own SplitSeed stream and failures settle on the lowest trial
  // index, so the result is identical at every thread count.
  int num_threads = 0;
};

struct LockstepCheckResult {
  bool ok = true;
  std::string failure;
};

// Checks the lockstep conditions:
//  (1) decode_command ∘ encode_command = Some        (codec correspondence)
//  (2) figure 6(a): on decodable low-level inputs, impl and spec step in lockstep
//      through encode_state / encode_response
//  (3) figure 6(b): on undecodable inputs, the impl state is unchanged and the
//      response is encode_response(None)
// gen_state/gen_high generate random spec states and commands; gen_junk generates
// low-level inputs (some decodable, some not).
template <typename SS, typename CH, typename RH>
LockstepCheckResult CheckLockstep(
    const StateMachine<Bytes, Bytes, Bytes>& impl, const StateMachine<SS, CH, RH>& spec,
    const LockstepCodecs<SS, CH, RH>& codecs, const std::function<SS(Rng&)>& gen_state,
    const std::function<CH(Rng&)>& gen_high, const std::function<Bytes(Rng&)>& gen_junk,
    const std::function<std::string(const CH&)>& show_high,
    const LockstepCheckOptions& options = {}) {
  // One trial, against its own deterministic RNG stream. Returns the failure
  // message, or an empty string on success.
  auto run_trial = [&](Rng& rng) -> std::string {
    // (1) Codec correspondence.
    CH command = gen_high(rng);
    Bytes encoded = codecs.encode_command(command);
    auto decoded = codecs.decode_command(encoded);
    if (!decoded.has_value() || show_high(*decoded) != show_high(command)) {
      return "decode_command is not a left inverse of encode_command for " +
             show_high(command);
    }
    // (2) Figure 6(a) on a random related state pair.
    SS spec_state = gen_state(rng);
    Bytes impl_state = codecs.encode_state(spec_state);
    auto [impl_next, impl_out] = impl.step(impl_state, encoded);
    auto [spec_next, spec_out] = spec.step(spec_state, command);
    if (impl_next != codecs.encode_state(spec_next)) {
      return "post-states diverge (figure 6a) for " + show_high(command);
    }
    if (impl_out != codecs.encode_response(std::optional<RH>(spec_out))) {
      return "responses diverge (figure 6a) for " + show_high(command);
    }
    // (3) Figure 6(b) on junk input.
    Bytes junk = gen_junk(rng);
    if (!codecs.decode_command(junk).has_value()) {
      auto [junk_next, junk_out] = impl.step(impl_state, junk);
      if (junk_next != impl_state) {
        return "state changed on an undecodable command (figure 6b)";
      }
      if (junk_out != codecs.encode_response(std::nullopt)) {
        return "non-canonical response to an undecodable command (figure 6b)";
      }
    }
    return {};
  };

  size_t trials = options.trials > 0 ? options.trials : 0;
  ThreadPool pool(options.num_threads);
  auto outcome = ParallelReduce<std::string>(
      pool, trials,
      [&](size_t trial) {
        Rng rng(SplitSeed(options.seed, trial));
        return run_trial(rng);
      },
      [](const std::string& failure) { return !failure.empty(); });
  if (outcome.first_failure.has_value()) {
    return {false, *outcome.results[*outcome.first_failure]};
  }
  return {};
}

// The driver implied by the codecs: encode, one low-level step, decode.
template <typename SS, typename CH, typename RH>
Driver<CH, RH, Bytes, Bytes> BuildLockstepDriver(const LockstepCodecs<SS, CH, RH>& codecs) {
  return [codecs](const CH& command, const std::function<Bytes(const Bytes&)>& lowop) {
    return codecs.decode_response(lowop(codecs.encode_command(command)));
  };
}

// The implicit emulator: decode the low-level input; if it denotes a spec command,
// query the spec and encode the response; otherwise answer encode_response(None).
template <typename SS, typename CH, typename RH>
EmulatorFactory<Bytes, Bytes, CH, RH> BuildLockstepEmulator(
    const LockstepCodecs<SS, CH, RH>& codecs) {
  class LockstepEmulator final : public Emulator<Bytes, Bytes, CH, RH> {
   public:
    explicit LockstepEmulator(const LockstepCodecs<SS, CH, RH>& codecs) : codecs_(codecs) {}
    Bytes OnCommand(const Bytes& command,
                    const std::function<RH(const CH&)>& spec) override {
      auto decoded = codecs_.decode_command(command);
      if (!decoded.has_value()) {
        return codecs_.encode_response(std::nullopt);
      }
      return codecs_.encode_response(std::optional<RH>(spec(*decoded)));
    }

   private:
    LockstepCodecs<SS, CH, RH> codecs_;
  };
  return [codecs]() { return std::make_unique<LockstepEmulator>(codecs); };
}

}  // namespace parfait::ipr

#endif  // PARFAIT_IPR_LOCKSTEP_H_
