// IPR by equivalence (section 3): when two state machines have identical command and
// response types and are observationally equivalent, the identity driver and the
// identity emulator witness IPR between them. This is the strategy the paper applies
// at the verified-compiler boundaries (Low* -> C -> Asm): compiler correctness gives
// observational equivalence of the whole-command machines, which implies IPR.
//
// In this reproduction the compiler is not proven; the equivalence is established by
// translation validation — CheckObservationalEquivalence run over the actual machines
// (the native and minicc-compiled interpretations of the same handle()).
#ifndef PARFAIT_IPR_EQUIVALENCE_H_
#define PARFAIT_IPR_EQUIVALENCE_H_

#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "src/ipr/ipr.h"
#include "src/ipr/state_machine.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"
#include "src/support/telemetry.h"

namespace parfait::ipr {

struct EquivalenceCheckOptions {
  int trials = 32;
  int ops_per_trial = 16;
  uint64_t seed = 99;
  // Trials shard across this many threads (0 = all hardware threads); see
  // src/support/parallel.h for the determinism guarantee.
  int num_threads = 0;
};

struct EquivalenceCheckResult {
  bool ok = true;
  std::string counterexample;
  // Operations stepped on both machines, folded in trial-index order up to the
  // settled failure (the unified trials-attempted/executed accounting).
  int checks_run = 0;
  // ipr/equivalence/* counters, bit-identical at every thread count.
  telemetry::TelemetrySnapshot telemetry;
  // On failure: seed, trial index, and the divergence transcript.
  std::optional<telemetry::Evidence> evidence;
};

// Observational equivalence: identical response streams for every command sequence.
template <typename S1, typename S2, typename C, typename R>
EquivalenceCheckResult CheckObservationalEquivalence(
    const StateMachine<S1, C, R>& m1, const StateMachine<S2, C, R>& m2,
    const std::function<C(Rng&)>& gen, const std::function<std::string(const R&)>& show,
    const EquivalenceCheckOptions& options = {}) {
  // A trial's outcome: the divergence transcript (empty = passed) and how many
  // operations both machines stepped before finishing or diverging.
  struct Trial {
    std::string counterexample;
    int ops = 0;
  };

  size_t trials = options.trials > 0 ? options.trials : 0;
  ThreadPool pool(options.num_threads);
  // Each trial drives fresh Running instances from its own SplitSeed stream, so
  // trials are fully independent and the counterexample (lowest failing trial) is
  // identical at every thread count.
  auto outcome = ParallelReduce<Trial>(
      pool, trials,
      [&](size_t trial) -> Trial {
        TELEMETRY_SPAN("ipr/equivalence_trial");
        Rng rng(SplitSeed(options.seed, trial));
        Running<S1, C, R> r1(m1);
        Running<S2, C, R> r2(m2);
        Trial result;
        std::ostringstream transcript;
        for (int op = 0; op < options.ops_per_trial; op++) {
          C command = gen(rng);
          R out1 = r1.Step(command);
          R out2 = r2.Step(command);
          result.ops++;
          transcript << "op " << op << ": m1=" << show(out1) << " m2=" << show(out2)
                     << "\n";
          if (show(out1) != show(out2)) {
            result.counterexample =
                "trial " + std::to_string(trial) + " diverged:\n" + transcript.str();
            return result;
          }
        }
        return result;
      },
      [](const Trial& trial) { return !trial.counterexample.empty(); });

  EquivalenceCheckResult result;
  size_t last = outcome.first_failure.value_or(trials == 0 ? 0 : trials - 1);
  for (size_t i = 0; i < trials && i <= last; i++) {
    if (!outcome.results[i].has_value()) {
      continue;
    }
    const Trial& trial = *outcome.results[i];
    result.checks_run += trial.ops;
    result.telemetry.AddCounter("ipr/equivalence/trials", 1);
    result.telemetry.AddCounter("ipr/equivalence/ops", trial.ops);
    result.telemetry.RecordValue("ipr/equivalence/ops_per_trial", trial.ops);
  }
  if (outcome.first_failure.has_value()) {
    size_t f = *outcome.first_failure;
    const Trial& failing = *outcome.results[f];
    result.ok = false;
    result.counterexample = failing.counterexample;
    telemetry::Evidence evidence;
    evidence.checker = "ipr/equivalence";
    evidence.Add("seed", options.seed);
    evidence.Add("trial_index", f);
    evidence.Add("trial_seed", SplitSeed(options.seed, f));
    evidence.Add("ops_before_divergence", static_cast<uint64_t>(failing.ops));
    evidence.Add("transcript", failing.counterexample);
    result.evidence = evidence;
    telemetry::Telemetry::Global().RecordEvidence(evidence);
  }
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

// The identity driver: one high-level op = one identical low-level op.
template <typename C, typename R>
Driver<C, R, C, R> IdentityDriver() {
  return [](const C& command, const std::function<R(const C&)>& lowop) {
    return lowop(command);
  };
}

// The identity emulator: forwards every low-level command to the spec.
template <typename C, typename R>
EmulatorFactory<C, R, C, R> IdentityEmulator() {
  class Identity final : public Emulator<C, R, C, R> {
   public:
    R OnCommand(const C& command, const std::function<R(const C&)>& spec) override {
      return spec(command);
    }
  };
  return []() { return std::make_unique<Identity>(); };
}

}  // namespace parfait::ipr

#endif  // PARFAIT_IPR_EQUIVALENCE_H_
