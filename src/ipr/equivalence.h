// IPR by equivalence (section 3): when two state machines have identical command and
// response types and are observationally equivalent, the identity driver and the
// identity emulator witness IPR between them. This is the strategy the paper applies
// at the verified-compiler boundaries (Low* -> C -> Asm): compiler correctness gives
// observational equivalence of the whole-command machines, which implies IPR.
//
// In this reproduction the compiler is not proven; the equivalence is established by
// translation validation — CheckObservationalEquivalence run over the actual machines
// (the native and minicc-compiled interpretations of the same handle()).
#ifndef PARFAIT_IPR_EQUIVALENCE_H_
#define PARFAIT_IPR_EQUIVALENCE_H_

#include <memory>
#include <sstream>
#include <string>

#include "src/ipr/ipr.h"
#include "src/ipr/state_machine.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"

namespace parfait::ipr {

struct EquivalenceCheckOptions {
  int trials = 32;
  int ops_per_trial = 16;
  uint64_t seed = 99;
  // Trials shard across this many threads (0 = all hardware threads); see
  // src/support/parallel.h for the determinism guarantee.
  int num_threads = 0;
};

struct EquivalenceCheckResult {
  bool ok = true;
  std::string counterexample;
};

// Observational equivalence: identical response streams for every command sequence.
template <typename S1, typename S2, typename C, typename R>
EquivalenceCheckResult CheckObservationalEquivalence(
    const StateMachine<S1, C, R>& m1, const StateMachine<S2, C, R>& m2,
    const std::function<C(Rng&)>& gen, const std::function<std::string(const R&)>& show,
    const EquivalenceCheckOptions& options = {}) {
  size_t trials = options.trials > 0 ? options.trials : 0;
  ThreadPool pool(options.num_threads);
  // Each trial drives fresh Running instances from its own SplitSeed stream, so
  // trials are fully independent and the counterexample (lowest failing trial) is
  // identical at every thread count.
  auto outcome = ParallelReduce<std::string>(
      pool, trials,
      [&](size_t trial) -> std::string {
        Rng rng(SplitSeed(options.seed, trial));
        Running<S1, C, R> r1(m1);
        Running<S2, C, R> r2(m2);
        std::ostringstream transcript;
        for (int op = 0; op < options.ops_per_trial; op++) {
          C command = gen(rng);
          R out1 = r1.Step(command);
          R out2 = r2.Step(command);
          transcript << "op " << op << ": m1=" << show(out1) << " m2=" << show(out2)
                     << "\n";
          if (show(out1) != show(out2)) {
            return "trial " + std::to_string(trial) + " diverged:\n" + transcript.str();
          }
        }
        return {};
      },
      [](const std::string& counterexample) { return !counterexample.empty(); });
  if (outcome.first_failure.has_value()) {
    return {false, *outcome.results[*outcome.first_failure]};
  }
  return {};
}

// The identity driver: one high-level op = one identical low-level op.
template <typename C, typename R>
Driver<C, R, C, R> IdentityDriver() {
  return [](const C& command, const std::function<R(const C&)>& lowop) {
    return lowop(command);
  };
}

// The identity emulator: forwards every low-level command to the spec.
template <typename C, typename R>
EmulatorFactory<C, R, C, R> IdentityEmulator() {
  class Identity final : public Emulator<C, R, C, R> {
   public:
    R OnCommand(const C& command, const std::function<R(const C&)>& spec) override {
      return spec(command);
    }
  };
  return []() { return std::make_unique<Identity>(); };
}

}  // namespace parfait::ipr

#endif  // PARFAIT_IPR_EQUIVALENCE_H_
