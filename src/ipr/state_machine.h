// The IPR formalism's state machines (the paper's figure 3, transliterated from Coq):
//
//   Record state_machine (command response : Type) :=
//     { state : Type; init : state; step : state -> command -> (state * response); }.
//
// Every level of abstraction in this repository is *modeled* as such a machine: the
// application specification directly, the byte-level handle() implementations through
// their buffers, the assembly level through model-Asm (figure 8), and the SoC through
// its wire-level command alphabet {set_input, get_output, tick}.
//
// The paper proves theorems about these machines in Coq; here the theory layer is
// executable, and the theorems become machine-checked *properties* validated by
// exhaustive/randomized checking (see ipr.h, lockstep.h, equivalence.h,
// transitivity.h). DESIGN.md records this substitution.
#ifndef PARFAIT_IPR_STATE_MACHINE_H_
#define PARFAIT_IPR_STATE_MACHINE_H_

#include <functional>
#include <utility>

namespace parfait::ipr {

// A state machine with state S, commands C, responses R. `step` must be a pure
// function of (state, command) — determinism is what makes observational equivalence
// meaningful.
template <typename S, typename C, typename R>
struct StateMachine {
  S init;
  std::function<std::pair<S, R>(const S&, const C&)> step;
};

// A running instance: the closure of a machine over its current state.
template <typename S, typename C, typename R>
class Running {
 public:
  explicit Running(const StateMachine<S, C, R>& machine)
      : machine_(&machine), state_(machine.init) {}

  R Step(const C& command) {
    auto [next, response] = machine_->step(state_, command);
    state_ = std::move(next);
    return response;
  }

  const S& state() const { return state_; }

 private:
  const StateMachine<S, C, R>* machine_;
  S state_;
};

}  // namespace parfait::ipr

#endif  // PARFAIT_IPR_STATE_MACHINE_H_
