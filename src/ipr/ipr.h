// Information-preserving refinement (IPR) — definition and checker.
//
// The paper's figure 5: an implementation M_i (commands I_i, responses O_i) is an IPR
// of a specification M_s (commands I_s, responses O_s) with respect to a driver d,
// written M_i ≈_IPR[d] M_s, if there exists an emulator e such that the *real world*
// (M_i, with d translating spec-level operations onto it) is observationally
// equivalent to the *ideal world* (M_s, with e fabricating implementation-level
// behaviour from query access to M_s alone).
//
// Both worlds expose the same two-sided interface:
//   - spec-level ops   (through the driver in the real world, directly in the ideal)
//   - impl-level ops   (directly in the real world, through the emulator in the ideal)
// and the adversary may interleave them arbitrarily. If no interleaving distinguishes
// the worlds, the implementation leaks nothing beyond the specification.
//
// The Coq development proves IPR properties deductively; this header provides the
// *checker*: a randomized distinguisher that drives both worlds with adversarial
// interleavings and compares every observable. A failed check yields a concrete
// distinguishing transcript.
#ifndef PARFAIT_IPR_IPR_H_
#define PARFAIT_IPR_IPR_H_

#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/ipr/state_machine.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"

namespace parfait::ipr {

// A driver translates one spec-level command into an interactive program over the
// lower level: it may issue any number of low-level commands (via `lowop`) and then
// returns the spec-level response. (Section 3: "a program mapping spec-level
// operations to implementation-level I/O".)
template <typename CH, typename RH, typename CL, typename RL>
using Driver = std::function<RH(const CH&, const std::function<RL(const CL&)>& lowop)>;

// An emulator mimics the implementation's low-level interface given only query access
// to the specification. It is stateful (created fresh per world instance).
template <typename CL, typename RL, typename CH, typename RH>
class Emulator {
 public:
  virtual ~Emulator() = default;
  // Handles one low-level command; `spec` lets the emulator step the ideal-world spec.
  virtual RL OnCommand(const CL& command, const std::function<RH(const CH&)>& spec) = 0;
};

template <typename CL, typename RL, typename CH, typename RH>
using EmulatorFactory = std::function<std::unique_ptr<Emulator<CL, RL, CH, RH>>()>;

struct IprCheckOptions {
  int trials = 64;           // Independent adversarial transcripts.
  int ops_per_trial = 32;    // Interleaved operations per transcript.
  uint64_t seed = 2024;
  // Transcripts shard across this many threads (0 = all hardware threads); each
  // trial's adversary draws from its own SplitSeed stream (see support/parallel.h).
  int num_threads = 0;
};

struct IprCheckResult {
  bool ok = true;
  std::string counterexample;  // Human-readable distinguishing transcript on failure.
};

// Checks M_i ≈_IPR[d] M_s by randomized distinguishing. `gen_high` and `gen_low`
// produce adversarial spec-level and impl-level commands; `show` functions render the
// counterexample.
template <typename SI, typename SS, typename CH, typename RH, typename CL, typename RL>
IprCheckResult CheckIpr(const StateMachine<SI, CL, RL>& impl,
                        const StateMachine<SS, CH, RH>& spec,
                        const Driver<CH, RH, CL, RL>& driver,
                        const EmulatorFactory<CL, RL, CH, RH>& emulator_factory,
                        const std::function<CH(Rng&)>& gen_high,
                        const std::function<CL(Rng&)>& gen_low,
                        const std::function<std::string(const RH&)>& show_high,
                        const std::function<std::string(const RL&)>& show_low,
                        const IprCheckOptions& options = {}) {
  // Each trial is one adversarial transcript against fresh world instances, driven
  // by its own SplitSeed RNG stream — independent, so trials run concurrently and
  // the distinguishing transcript (lowest failing trial) is schedule-independent.
  auto run_trial = [&](size_t trial) -> std::string {
    Rng rng(SplitSeed(options.seed, trial));
    // Real world: implementation + driver.
    Running<SI, CL, RL> real_impl(impl);
    // Ideal world: specification + emulator.
    Running<SS, CH, RH> ideal_spec(spec);
    auto emulator = emulator_factory();
    std::ostringstream transcript;

    for (int op = 0; op < options.ops_per_trial; op++) {
      if (rng.Bool()) {
        // Spec-level operation through both worlds.
        CH command = gen_high(rng);
        RH real_response =
            driver(command, [&](const CL& low) { return real_impl.Step(low); });
        RH ideal_response = ideal_spec.Step(command);
        transcript << "high op -> real: " << show_high(real_response)
                   << ", ideal: " << show_high(ideal_response) << "\n";
        if (show_high(real_response) != show_high(ideal_response)) {
          return "trial " + std::to_string(trial) + " diverged on a spec-level op:\n" +
                 transcript.str();
        }
      } else {
        // Impl-level (adversarial) operation.
        CL command = gen_low(rng);
        RL real_response = real_impl.Step(command);
        RL ideal_response = emulator->OnCommand(
            command, [&](const CH& high) { return ideal_spec.Step(high); });
        transcript << "low op -> real: " << show_low(real_response)
                   << ", ideal: " << show_low(ideal_response) << "\n";
        if (show_low(real_response) != show_low(ideal_response)) {
          return "trial " + std::to_string(trial) + " diverged on an impl-level op:\n" +
                 transcript.str();
        }
      }
    }
    return {};
  };

  size_t trials = options.trials > 0 ? options.trials : 0;
  ThreadPool pool(options.num_threads);
  auto outcome = ParallelReduce<std::string>(
      pool, trials, [&](size_t trial) { return run_trial(trial); },
      [](const std::string& counterexample) { return !counterexample.empty(); });
  if (outcome.first_failure.has_value()) {
    return IprCheckResult{false, *outcome.results[*outcome.first_failure]};
  }
  return IprCheckResult{};
}

}  // namespace parfait::ipr

#endif  // PARFAIT_IPR_IPR_H_
