// Transitivity of IPR — the paper's key enabling theorem (section 3):
//
//     M1 ≈_IPR[d12] M2     M2 ≈_IPR[d23] M3
//     ------------------------------------
//          M1 ≈_IPR[d12 ∘ d23] M3
//
// The composed driver runs d23 and routes each mid-level operation through d12's
// low-level port; the composed emulator stacks the two emulators the other way
// around. These constructions are exactly the Coq development's witnesses; the theory
// tests validate the theorem by running the generic IPR checker on composed
// three-level towers (including mutants where one link is broken, which must fail).
#ifndef PARFAIT_IPR_TRANSITIVITY_H_
#define PARFAIT_IPR_TRANSITIVITY_H_

#include <memory>

#include "src/ipr/ipr.h"

namespace parfait::ipr {

// Composes drivers: d_high_mid translates top-level ops to mid-level ops; d_mid_low
// translates mid-level ops to low-level ops. The result translates top-level ops to
// low-level ops. (Levels: H = top spec, M = middle, L = bottom implementation.)
template <typename CH, typename RH, typename CM, typename RM, typename CL, typename RL>
Driver<CH, RH, CL, RL> ComposeDrivers(const Driver<CH, RH, CM, RM>& d_high_mid,
                                      const Driver<CM, RM, CL, RL>& d_mid_low) {
  return [d_high_mid, d_mid_low](const CH& command,
                                 const std::function<RL(const CL&)>& lowop) {
    return d_high_mid(command, [&](const CM& mid) { return d_mid_low(mid, lowop); });
  };
}

// Composes emulators: e_low_mid fabricates low-level behaviour from mid-level query
// access; e_mid_high fabricates mid-level behaviour from top-level query access. The
// result fabricates low-level behaviour from top-level access alone.
template <typename CL, typename RL, typename CM, typename RM, typename CH, typename RH>
EmulatorFactory<CL, RL, CH, RH> ComposeEmulators(
    const EmulatorFactory<CL, RL, CM, RM>& e_low_mid,
    const EmulatorFactory<CM, RM, CH, RH>& e_mid_high) {
  class Composed final : public Emulator<CL, RL, CH, RH> {
   public:
    Composed(std::unique_ptr<Emulator<CL, RL, CM, RM>> low_mid,
             std::unique_ptr<Emulator<CM, RM, CH, RH>> mid_high)
        : low_mid_(std::move(low_mid)), mid_high_(std::move(mid_high)) {}

    RL OnCommand(const CL& command, const std::function<RH(const CH&)>& spec) override {
      return low_mid_->OnCommand(command, [&](const CM& mid) {
        return mid_high_->OnCommand(mid, spec);
      });
    }

   private:
    std::unique_ptr<Emulator<CL, RL, CM, RM>> low_mid_;
    std::unique_ptr<Emulator<CM, RM, CH, RH>> mid_high_;
  };
  return [e_low_mid, e_mid_high]() {
    return std::make_unique<Composed>(e_low_mid(), e_mid_high());
  };
}

}  // namespace parfait::ipr

#endif  // PARFAIT_IPR_TRANSITIVITY_H_
