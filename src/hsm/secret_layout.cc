#include "src/hsm/secret_layout.h"

namespace parfait::hsm {

SecretLayout SecretLayout::ForApp(const App& app) {
  SecretLayout layout;
  layout.state_size = static_cast<uint32_t>(app.state_size());
  layout.copy_b_offset = layout.copy_a_offset + layout.state_size;
  for (auto [offset, length] : app.SecretStateRanges()) {
    layout.state_regions.push_back(SecretRegion{offset, length});
  }
  return layout;
}

std::vector<SecretRegion> SecretLayout::FramSecretRegions() const {
  std::vector<SecretRegion> out;
  out.reserve(2 * state_regions.size());
  for (const SecretRegion& r : state_regions) {
    out.push_back(SecretRegion{copy_a_offset + r.offset, r.length});
  }
  for (const SecretRegion& r : state_regions) {
    out.push_back(SecretRegion{copy_b_offset + r.offset, r.length});
  }
  return out;
}

}  // namespace parfait::hsm
