// The application abstraction shared by every checker and harness in this repository.
//
// Each HSM app bundles the paper's per-app artifacts:
//   - the application specification (figure 4 / figure 12): a typed, whole-command
//     state machine, exposed here through its encoded form (the encode_state /
//     encode_response functions of the Starling lockstep strategy);
//   - the driver codecs: encode_command / decode_response (trusted, section 3) and
//     their duals decode_command / encode_response (the implicit emulator);
//   - the implementation: the dual-compiled firmware handle (the Low*/C level) and the
//     MiniC sources from which the SoC firmware is built.
#ifndef PARFAIT_HSM_APP_H_
#define PARFAIT_HSM_APP_H_

#include <optional>
#include <string>
#include <utility>

#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::hsm {

class App {
 public:
  virtual ~App() = default;

  virtual const char* name() const = 0;
  virtual size_t state_size() const = 0;
  virtual size_t command_size() const = 0;
  virtual size_t response_size() const = 0;

  // encode_state(spec.init) — all-zero for both case-study apps, matching fresh FRAM.
  virtual Bytes InitStateEncoded() const = 0;

  // One spec-level step through the codecs: decodes `command`; if it denotes no
  // spec-level command, returns std::nullopt (the figure 6 "None" case). Otherwise
  // runs the typed specification step and returns (encode_state(state'),
  // encode_response(Some response)).
  virtual std::optional<std::pair<Bytes, Bytes>> SpecStepEncoded(const Bytes& state,
                                                                 const Bytes& command) const = 0;

  // encode_response(None): the canonical response to undecodable commands.
  virtual Bytes EncodeResponseNone() const = 0;

  // The byte-level implementation: the firmware handle() compiled natively. Buffers
  // must have exactly the advertised sizes; state and resp are written in place.
  virtual void NativeHandle(uint8_t* state, uint8_t* cmd, uint8_t* resp) const = 0;

  // Concatenated MiniC sources (crypto substrate + handle) for the firmware build.
  virtual std::string FirmwareSources() const = 0;

  // Generates a random well-formed command (for property-based checking).
  virtual Bytes RandomValidCommand(Rng& rng) const = 0;

  // Generates a random command that decodes to None (an adversarial/malformed input).
  virtual Bytes RandomInvalidCommand(Rng& rng) const = 0;

  // Byte ranges of the encoded state that hold secrets (for taint seeding). Pairs of
  // (offset, length).
  virtual std::vector<std::pair<uint32_t, uint32_t>> SecretStateRanges() const = 0;
};

// The two case-study applications (section 7.1).
const App& EcdsaApp();
const App& HasherApp();

}  // namespace parfait::hsm

#endif  // PARFAIT_HSM_APP_H_
