// Native (host) compilation of the ECDSA HSM firmware sources.
//
// This is the repository's analog of the paper's "App Impl [C]" level: the exact MiniC
// sources that become the SoC firmware, compiled by the host C++ compiler. Starling's
// lockstep checks run against this artifact, and the model-Asm differential tests
// compare the minicc-compiled version against it.
#include "src/hsm/fw_native.h"

namespace parfait::hsm::fw_ecdsa {

enum { STATE_SIZE = 72, COMMAND_SIZE = 65, RESPONSE_SIZE = 65 };

#include "firmware/fw.h"

#include "firmware/hash.c"
#include "firmware/p256.c"

#include "firmware/app_ecdsa.c"

}  // namespace parfait::hsm::fw_ecdsa

namespace parfait::hsm {

void EcdsaNativeHandle(uint8_t* state, uint8_t* cmd, uint8_t* resp) {
  fw_ecdsa::handle(state, cmd, resp);
}

uint32_t EcdsaNativeSign(uint8_t* sig64, uint8_t* msg32, uint8_t* key32, uint8_t* nonce32) {
  return fw_ecdsa::ecdsa_sign_fw(sig64, msg32, key32, nonce32);
}

void NativeSha256(uint8_t* out32, uint8_t* msg, uint32_t len) {
  fw_ecdsa::sha256(out32, msg, len);
}

void NativeHmacSha256(uint8_t* out32, uint8_t* key32, uint8_t* msg, uint32_t len) {
  fw_ecdsa::hmac_sha256(out32, key32, msg, len);
}

}  // namespace parfait::hsm
