#include "src/hsm/hsm_system.h"

#include "src/hsm/secret_layout.h"
#include "src/platform/firmware.h"
#include "src/support/status.h"

namespace parfait::hsm {

namespace {

riscv::Image BuildImage(const App& app, const HsmBuildOptions& options,
                        riscv::Witness* witness, std::string* unit_source) {
  platform::FirmwareConfig config;
  config.app_sources =
      options.source_override.empty() ? app.FirmwareSources() : options.source_override;
  config.state_size = static_cast<uint32_t>(app.state_size());
  config.command_size = static_cast<uint32_t>(app.command_size());
  config.response_size = static_cast<uint32_t>(app.response_size());
  config.opt_level = options.opt_level;
  config.sys_sources_override = options.sys_source_override;
  config.mutation = options.mutation;
  auto image = platform::BuildFirmware(config, witness, unit_source);
  PARFAIT_CHECK_MSG(image.ok(), "firmware build failed: %s", image.error().c_str());
  return std::move(image).value();
}

}  // namespace

HsmSystem::HsmSystem(const App& app, const HsmBuildOptions& options)
    : app_(&app),
      options_(options),
      soc_id_(std::string(options.cpu == soc::CpuKind::kIbexLite ? "ibex_lite" : "pico_lite") +
              (options.variable_latency_mul ? "_vlm" : "")),
      leakage_contract_(contract::BuiltinContract(soc_id_)),
      image_(BuildImage(app, options, &witness_, &firmware_source_)),
      model_asm_(image_, platform::ModelAsm::Sizes{static_cast<uint32_t>(app.state_size()),
                                                   static_cast<uint32_t>(app.command_size()),
                                                   static_cast<uint32_t>(app.response_size())}) {}

soc::SocConfig HsmSystem::MakeSocConfig() const {
  soc::SocConfig config;
  config.cpu_kind = options_.cpu;
  config.taint_tracking = options_.taint_tracking;
  config.cpu.variable_latency_mul = options_.variable_latency_mul;
  config.cpu.load_use_hazard_bug = options_.load_use_hazard_bug;
  return config;
}

std::unique_ptr<soc::Soc> HsmSystem::NewSoc() const {
  return std::make_unique<soc::Soc>(image_, MakeSocConfig());
}

std::unique_ptr<soc::Soc> HsmSystem::NewSocWithFram(const Bytes& fram) const {
  auto soc = NewSoc();
  soc->bus().LoadFram(fram, {});
  return soc;
}

Bytes HsmSystem::MakeFram(const Bytes& state) const {
  PARFAIT_CHECK(state.size() == app_->state_size());
  SecretLayout layout = SecretLayout::ForApp(*app_);
  Bytes fram(layout.JournalSize(), 0);
  // flag = 0 -> copy A active.
  std::copy(state.begin(), state.end(), fram.begin() + layout.copy_a_offset);
  return fram;
}

void HsmSystem::SeedSecretTaint(soc::Soc& soc) const {
  for (const SecretRegion& r : SecretLayout::ForApp(*app_).FramSecretRegions()) {
    soc.bus().SetFramTaint(r.offset, r.length, true);
  }
}

}  // namespace parfait::hsm
