// The password-hashing application: typed specification (figure 12), codecs, and
// implementation hooks.
#include <cstring>

#include "src/crypto/hmac.h"
#include "src/hsm/app.h"
#include "src/hsm/fw_native.h"
#include "src/platform/firmware.h"
#include "src/support/status.h"

namespace parfait::hsm {

namespace {

constexpr size_t kStateSize = 32;
constexpr size_t kCommandSize = 33;
constexpr size_t kResponseSize = 33;

class HasherAppImpl final : public App {
 public:
  const char* name() const override { return "Password hasher"; }
  size_t state_size() const override { return kStateSize; }
  size_t command_size() const override { return kCommandSize; }
  size_t response_size() const override { return kResponseSize; }

  Bytes InitStateEncoded() const override { return Bytes(kStateSize, 0); }

  std::optional<std::pair<Bytes, Bytes>> SpecStepEncoded(const Bytes& state,
                                                         const Bytes& command) const override {
    PARFAIT_CHECK(state.size() == kStateSize);
    PARFAIT_CHECK(command.size() == kCommandSize);
    if (command[0] == 1) {
      // Initialize secret -> { secret }, Initialized.
      Bytes next(command.begin() + 1, command.end());
      Bytes resp(kResponseSize, 0);
      resp[0] = 1;
      return std::make_pair(next, resp);
    }
    if (command[0] == 2) {
      // Hash message -> st, Hashed (hmac Blake2S st.secret message).
      auto digest = crypto::HmacBlake2s(state, std::span<const uint8_t>(command.data() + 1, 32));
      Bytes resp(kResponseSize, 0);
      resp[0] = 2;
      std::memcpy(resp.data() + 1, digest.data(), 32);
      return std::make_pair(state, resp);
    }
    return std::nullopt;
  }

  Bytes EncodeResponseNone() const override { return Bytes(kResponseSize, 0); }

  void NativeHandle(uint8_t* state, uint8_t* cmd, uint8_t* resp) const override {
    HasherNativeHandle(state, cmd, resp);
  }

  std::string FirmwareSources() const override {
    return platform::ReadFirmwareFile("hash.c") + platform::ReadFirmwareFile("app_hasher.c");
  }

  Bytes RandomValidCommand(Rng& rng) const override {
    Bytes cmd(kCommandSize);
    rng.Fill(cmd);
    cmd[0] = rng.Bool() ? 1 : 2;
    return cmd;
  }

  Bytes RandomInvalidCommand(Rng& rng) const override {
    Bytes cmd(kCommandSize);
    rng.Fill(cmd);
    do {
      cmd[0] = rng.Byte();
    } while (cmd[0] == 1 || cmd[0] == 2);
    return cmd;
  }

  std::vector<std::pair<uint32_t, uint32_t>> SecretStateRanges() const override {
    return {{0, 32}};  // The whole state is the HMAC secret.
  }
};

}  // namespace

const App& HasherApp() {
  static const HasherAppImpl instance;
  return instance;
}

}  // namespace parfait::hsm
