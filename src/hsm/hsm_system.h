// HsmSystem: assembles a complete verified-HSM stack for one application — firmware
// image, model-Asm interpretation, and SoC factory — the artifact bundle that the
// checkers (Starling, Knox2) and the benchmarks operate on.
#ifndef PARFAIT_HSM_HSM_SYSTEM_H_
#define PARFAIT_HSM_HSM_SYSTEM_H_

#include <memory>
#include <string>

#include "src/contract/contract.h"
#include "src/hsm/app.h"
#include "src/minicc/codegen.h"
#include "src/platform/model_asm.h"
#include "src/riscv/witness.h"
#include "src/soc/soc.h"

namespace parfait::hsm {

struct HsmBuildOptions {
  int opt_level = 0;  // The verified pipeline uses O0 (CompCert stand-in).
  soc::CpuKind cpu = soc::CpuKind::kIbexLite;
  bool taint_tracking = false;
  bool variable_latency_mul = false;
  bool load_use_hazard_bug = false;
  // Bug-injection hooks for the attack matrix: replacements for the app sources and
  // for the system software (firmware/sys.c).
  std::string source_override;      // When non-empty, replaces App::FirmwareSources().
  std::string sys_source_override;  // When non-empty, replaces firmware/sys.c.
  // Seeded miscompilation for the translation-validator mutation harness.
  minicc::Mutation mutation;
};

class HsmSystem {
 public:
  // Builds firmware for the app and prepares the platform. CHECK-fails on compile
  // errors (the in-tree firmware always builds).
  HsmSystem(const App& app, const HsmBuildOptions& options);

  const App& app() const { return *app_; }
  const riscv::Image& image() const { return image_; }
  const platform::ModelAsm& model_asm() const { return model_asm_; }
  const HsmBuildOptions& options() const { return options_; }
  // The compiler's translation witness for the firmware's MiniC translation unit,
  // and the exact unit source it was compiled from (what parfait-tv re-parses).
  const riscv::Witness& witness() const { return witness_; }
  const std::string& firmware_source() const { return firmware_source_; }

  // Contract identity of the configured SoC: the lowercase cpu kind plus `_vlm`
  // when the variable-latency multiplier is selected ("ibex_lite_vlm"). Names the
  // committed artifact tools/contracts/<soc_id>.contract.
  const std::string& soc_id() const { return soc_id_; }
  // The builtin leakage contract for that SoC — what lint, TV, and the Knox2 taint
  // emulator check against unless an explicit artifact is supplied. All three
  // refuse contracts whose `soc` field disagrees with soc_id().
  const contract::LeakageContract& leakage_contract() const { return leakage_contract_; }

  // Fresh power-on (zeroed FRAM).
  std::unique_ptr<soc::Soc> NewSoc() const;
  // Power-on resuming from persisted FRAM contents.
  std::unique_ptr<soc::Soc> NewSocWithFram(const Bytes& fram) const;

  // An FRAM image holding `state` as the active journal copy (flag = 0, copy A).
  Bytes MakeFram(const Bytes& state) const;

  // Marks the app's secret state ranges as tainted in both journal copies.
  void SeedSecretTaint(soc::Soc& soc) const;

 private:
  soc::SocConfig MakeSocConfig() const;

  const App* app_;
  HsmBuildOptions options_;
  std::string soc_id_;
  contract::LeakageContract leakage_contract_;
  // Declared before image_: the image build fills them in as side outputs.
  riscv::Witness witness_;
  std::string firmware_source_;
  riscv::Image image_;
  platform::ModelAsm model_asm_;
};

}  // namespace parfait::hsm

#endif  // PARFAIT_HSM_HSM_SYSTEM_H_
