// Host entry points into the natively-compiled firmware sources (one translation unit
// per app; the MiniC sources are #included inside per-app namespaces).
#ifndef PARFAIT_HSM_FW_NATIVE_H_
#define PARFAIT_HSM_FW_NATIVE_H_

#include <cstdint>

namespace parfait::hsm {

// ECDSA app (state 72, command 65, response 65).
void EcdsaNativeHandle(uint8_t* state, uint8_t* cmd, uint8_t* resp);
// Direct access to firmware crypto for differential testing.
uint32_t EcdsaNativeSign(uint8_t* sig64, uint8_t* msg32, uint8_t* key32, uint8_t* nonce32);
void NativeSha256(uint8_t* out32, uint8_t* msg, uint32_t len);
void NativeHmacSha256(uint8_t* out32, uint8_t* key32, uint8_t* msg, uint32_t len);

// Password hasher app (state 32, command 33, response 33).
void HasherNativeHandle(uint8_t* state, uint8_t* cmd, uint8_t* resp);
void NativeBlake2s(uint8_t* out32, uint8_t* msg, uint32_t len);
void NativeHmacBlake2s(uint8_t* out32, uint8_t* key32, uint8_t* msg, uint32_t len);

}  // namespace parfait::hsm

#endif  // PARFAIT_HSM_FW_NATIVE_H_
