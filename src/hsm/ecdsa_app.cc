// The ECDSA certificate-signing application: typed specification (figure 4), codecs,
// and implementation hooks.
#include <cstring>

#include "src/crypto/ecdsa.h"
#include "src/crypto/hmac.h"
#include "src/hsm/app.h"
#include "src/hsm/fw_native.h"
#include "src/platform/firmware.h"
#include "src/support/status.h"

namespace parfait::hsm {

namespace {

constexpr size_t kStateSize = 72;
constexpr size_t kCommandSize = 65;
constexpr size_t kResponseSize = 65;

// The typed specification state (the paper's state_t: prf_key, prf_counter, sig_key).
struct SpecState {
  std::array<uint8_t, 32> prf_key{};
  uint64_t prf_counter = 0;
  std::array<uint8_t, 32> sig_key{};
};

// The typed commands (command_t) and responses (response_t).
struct InitializeCmd {
  std::array<uint8_t, 32> prf_key;
  std::array<uint8_t, 32> sig_key;
};
struct SignCmd {
  std::array<uint8_t, 32> msg;
};

struct SpecResponse {
  enum class Kind : uint8_t { kInitialized, kSignatureSome, kSignatureNone } kind;
  crypto::EcdsaSignature sig{};  // Valid for kSignatureSome.
};

// encode_state: the refinement relation between state_t and the 72-byte buffer.
Bytes EncodeState(const SpecState& st) {
  Bytes out(kStateSize);
  std::memcpy(out.data(), st.prf_key.data(), 32);
  StoreBe64(out.data() + 32, st.prf_counter);
  std::memcpy(out.data() + 40, st.sig_key.data(), 32);
  return out;
}

SpecState DecodeState(const Bytes& bytes) {
  PARFAIT_CHECK(bytes.size() == kStateSize);
  SpecState st;
  std::memcpy(st.prf_key.data(), bytes.data(), 32);
  st.prf_counter = LoadBe64(bytes.data() + 32);
  std::memcpy(st.sig_key.data(), bytes.data() + 40, 32);
  return st;
}

// The figure 4 step function, using the host crypto substrate as the HACL* stand-in.
std::pair<SpecState, SpecResponse> SpecStep(const SpecState& /*st*/, const InitializeCmd& cmd) {
  SpecState next;
  next.prf_key = cmd.prf_key;
  next.prf_counter = 0;
  next.sig_key = cmd.sig_key;
  return {next, SpecResponse{SpecResponse::Kind::kInitialized, {}}};
}

std::pair<SpecState, SpecResponse> SpecStep(const SpecState& st, const SignCmd& cmd) {
  if (st.prf_counter == UINT64_MAX) {
    return {st, SpecResponse{SpecResponse::Kind::kSignatureNone, {}}};
  }
  uint8_t data[8];
  StoreBe64(data, st.prf_counter);
  auto k = crypto::HmacSha256(st.prf_key, std::span<const uint8_t>(data, 8));
  crypto::EcdsaSignature sig;
  bool ok = crypto::EcdsaSign(cmd.msg, st.sig_key, k, &sig);
  SpecState next = st;
  next.prf_counter++;
  if (!ok) {
    return {next, SpecResponse{SpecResponse::Kind::kSignatureNone, {}}};
  }
  return {next, SpecResponse{SpecResponse::Kind::kSignatureSome, sig}};
}

Bytes EncodeResponse(const SpecResponse& r) {
  Bytes out(kResponseSize, 0);
  switch (r.kind) {
    case SpecResponse::Kind::kInitialized:
      out[0] = 1;
      break;
    case SpecResponse::Kind::kSignatureSome:
      out[0] = 2;
      std::memcpy(out.data() + 1, r.sig.r.data(), 32);
      std::memcpy(out.data() + 33, r.sig.s.data(), 32);
      break;
    case SpecResponse::Kind::kSignatureNone:
      out[0] = 3;
      break;
  }
  return out;
}

class EcdsaAppImpl final : public App {
 public:
  const char* name() const override { return "ECDSA signer"; }
  size_t state_size() const override { return kStateSize; }
  size_t command_size() const override { return kCommandSize; }
  size_t response_size() const override { return kResponseSize; }

  Bytes InitStateEncoded() const override { return Bytes(kStateSize, 0); }

  std::optional<std::pair<Bytes, Bytes>> SpecStepEncoded(const Bytes& state,
                                                         const Bytes& command) const override {
    PARFAIT_CHECK(state.size() == kStateSize);
    PARFAIT_CHECK(command.size() == kCommandSize);
    SpecState st = DecodeState(state);
    // decode_command: tag 1 = Initialize, tag 2 = Sign, anything else = None.
    if (command[0] == 1) {
      InitializeCmd cmd;
      std::memcpy(cmd.prf_key.data(), command.data() + 1, 32);
      std::memcpy(cmd.sig_key.data(), command.data() + 33, 32);
      auto [next, resp] = SpecStep(st, cmd);
      return std::make_pair(EncodeState(next), EncodeResponse(resp));
    }
    if (command[0] == 2) {
      SignCmd cmd;
      std::memcpy(cmd.msg.data(), command.data() + 1, 32);
      auto [next, resp] = SpecStep(st, cmd);
      return std::make_pair(EncodeState(next), EncodeResponse(resp));
    }
    return std::nullopt;
  }

  Bytes EncodeResponseNone() const override { return Bytes(kResponseSize, 0); }

  void NativeHandle(uint8_t* state, uint8_t* cmd, uint8_t* resp) const override {
    EcdsaNativeHandle(state, cmd, resp);
  }

  std::string FirmwareSources() const override {
    return platform::ReadFirmwareFile("hash.c") + platform::ReadFirmwareFile("p256.c") +
           platform::ReadFirmwareFile("app_ecdsa.c");
  }

  Bytes RandomValidCommand(Rng& rng) const override {
    Bytes cmd(kCommandSize);
    rng.Fill(cmd);
    cmd[0] = rng.Bool() ? 1 : 2;
    if (cmd[0] == 1) {
      // Keep generated keys comfortably inside the scalar range.
      cmd[33] &= 0x7f;
    } else {
      // Zero the unused tail so Sign commands are canonical encodings.
      std::fill(cmd.begin() + 33, cmd.end(), 0);
    }
    return cmd;
  }

  Bytes RandomInvalidCommand(Rng& rng) const override {
    Bytes cmd(kCommandSize);
    rng.Fill(cmd);
    do {
      cmd[0] = rng.Byte();
    } while (cmd[0] == 1 || cmd[0] == 2);
    return cmd;
  }

  std::vector<std::pair<uint32_t, uint32_t>> SecretStateRanges() const override {
    // prf_key and sig_key are secret; the counter is public (it is observable as the
    // count of successful operations).
    return {{0, 32}, {40, 32}};
  }
};

}  // namespace

const App& EcdsaApp() {
  static const EcdsaAppImpl instance;
  return instance;
}

}  // namespace parfait::hsm
