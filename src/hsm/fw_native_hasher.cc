// Native (host) compilation of the password-hasher HSM firmware sources.
#include "src/hsm/fw_native.h"

namespace parfait::hsm::fw_hasher {

enum { STATE_SIZE = 32, COMMAND_SIZE = 33, RESPONSE_SIZE = 33 };

#include "firmware/fw.h"

#include "firmware/hash.c"

#include "firmware/app_hasher.c"

}  // namespace parfait::hsm::fw_hasher

namespace parfait::hsm {

void HasherNativeHandle(uint8_t* state, uint8_t* cmd, uint8_t* resp) {
  fw_hasher::handle(state, cmd, resp);
}

void NativeBlake2s(uint8_t* out32, uint8_t* msg, uint32_t len) {
  fw_hasher::blake2s(out32, msg, len);
}

void NativeHmacBlake2s(uint8_t* out32, uint8_t* key32, uint8_t* msg, uint32_t len) {
  fw_hasher::hmac_blake2s(out32, key32, msg, len);
}

}  // namespace parfait::hsm
