// The single source of truth for where an application's secrets live.
//
// Three consumers need to agree byte-for-byte on this layout: the SoC taint seeding
// (HsmSystem::SeedSecretTaint), the Knox2 self-composition partner-state generator
// (knox2::MakeSecretVariant), and the static leakage analyzer (src/analysis), which
// seeds its abstract taint lattice from the same declarations. Before this header the
// journal arithmetic was inlined at each call site; any drift between the checkers
// would have silently weakened one of them.
#ifndef PARFAIT_HSM_SECRET_LAYOUT_H_
#define PARFAIT_HSM_SECRET_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "src/hsm/app.h"

namespace parfait::hsm {

// A contiguous run of secret bytes; `offset` is relative to whatever space the
// containing API documents (encoded state, FRAM, or bus addresses).
struct SecretRegion {
  uint32_t offset = 0;
  uint32_t length = 0;

  friend bool operator==(const SecretRegion&, const SecretRegion&) = default;
};

// The FRAM journal layout plus the app's secret ranges within one state copy.
//
// FRAM layout (firmware/sys.c load_state/store_state):
//   [0, 4)                          journal flag word (0 -> copy A active)
//   [4, 4 + state_size)             state copy A
//   [4 + state_size, 4 + 2*size)    state copy B
struct SecretLayout {
  uint32_t state_size = 0;
  uint32_t flag_offset = 0;
  uint32_t copy_a_offset = 4;
  uint32_t copy_b_offset = 0;  // 4 + state_size.
  // Secret byte ranges within one encoded state copy (the app's declaration).
  std::vector<SecretRegion> state_regions;

  static SecretLayout ForApp(const App& app);

  // Minimum FRAM bytes the journal occupies.
  uint32_t JournalSize() const { return copy_b_offset + state_size; }

  // Secret ranges relative to the FRAM base, covering BOTH journal copies (what taint
  // seeding and the static analyzer consume).
  std::vector<SecretRegion> FramSecretRegions() const;
};

}  // namespace parfait::hsm

#endif  // PARFAIT_HSM_SECRET_LAYOUT_H_
