#include "src/knox2/emulator.h"

#include <algorithm>

#include "src/support/bytes.h"
#include "src/support/parallel.h"
#include "src/support/profiler.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/telemetry.h"

namespace parfait::knox2 {

IdealWorld::IdealWorld(const hsm::HsmSystem& system, const Bytes& spec_state)
    : system_(&system), circuit_(system.NewSoc()), spec_state_(spec_state) {
  handle_addr_ = system.model_asm().handle_addr();
  inject_addr_ = system.image().SymbolOrDie("write_response");
}

rtl::WireSample IdealWorld::Tick(const rtl::WireInput& in) {
  const hsm::App& app = system_->app();
  uint32_t pc = circuit_->cpu().pc();
  // Watch point 1: the instance is about to begin handle(). Read the command out of
  // the instance's RAM and query the specification (one whole-command step of the
  // assembly-level machine).
  if (pc == handle_addr_ && !query_pending_ && !at_handle_) {
    at_handle_ = true;
    Bytes command = circuit_->bus().ReadBytes(system_->model_asm().command_addr(),
                                              static_cast<uint32_t>(app.command_size()));
    auto step = system_->model_asm().Step(spec_state_, command, 500'000'000);
    if (!step.ok) {
      failed_ = true;
      failure_ = "spec query failed: " + step.fault;
    } else {
      spec_state_ = step.state;
      pending_response_ = step.response;
      query_pending_ = true;
    }
  }
  if (pc != handle_addr_) {
    at_handle_ = false;
  }
  // Watch point 2: the instance reached the response hand-off (write_response entry).
  // Inject the specification's response over the dummy-computed one.
  if (pc == inject_addr_ && query_pending_) {
    circuit_->bus().WriteBytes(system_->model_asm().response_addr(), pending_response_);
    query_pending_ = false;
  }
  return circuit_->Tick(in);
}

namespace {

// One full IPR session: a command/noise sequence drawn from `trial_seed`'s stream,
// driven through both worlds cycle by cycle. No global-registry side effects — the
// fold in CheckWireIpr owns telemetry and evidence publication, which is what keeps
// batched multi-trial reports schedule-deterministic.
WireIprResult RunWireIprTrial(const hsm::HsmSystem& system, const Bytes& initial_state,
                              const WireIprOptions& options, uint64_t trial_seed) {
  TELEMETRY_SPAN("knox2/wire_ipr_trial");
  WireIprResult result;
  const hsm::App& app = system.app();
  Rng rng(trial_seed);

  auto real = system.NewSocWithFram(system.MakeFram(initial_state));
  IdealWorld ideal(system, initial_state);

  rtl::WireSample last_real;
  last_real.rx_ready = true;

  // The command the current (possibly failing) iteration is driving, kept in scope
  // for the counterexample artifact.
  int command_index = 0;
  Bytes command;
  auto finish = [&]() -> WireIprResult& {
    result.telemetry.AddCounter("knox2/wire_ipr/commands",
                                static_cast<uint64_t>(result.checks_run));
    result.telemetry.AddCounter("knox2/wire_ipr/cycles", result.cycles);
    if (!result.ok) {
      telemetry::Evidence evidence;
      evidence.checker = "knox2/wire_ipr";
      evidence.Add("app", app.name());
      evidence.Add("seed", trial_seed);
      evidence.Add("command_index", static_cast<uint64_t>(command_index));
      evidence.Add("command_hex", ToHex(command));
      evidence.Add("cycles", result.cycles);
      evidence.Add("divergence", result.divergence);
      result.evidence = evidence;
    }
    return result;
  };

  int total_commands = options.commands + options.noise_bytes;  // Valid + adversarial.
  for (int c = 0; c < total_commands; c++) {
    TELEMETRY_SPAN("knox2/wire_ipr_command");
    // Mix spec-level commands with adversarial (undecodable) ones; the wire inputs are
    // identical for both worlds either way.
    command_index = c;
    command = (c % 3 == 2) ? app.RandomInvalidCommand(rng) : app.RandomValidCommand(rng);
    size_t sent = 0;
    size_t received = 0;
    uint64_t budget = options.cycles_per_command;
    while (received < app.response_size()) {
      if (budget-- == 0) {
        result.divergence = "cycle budget exceeded on command " + std::to_string(c);
        return finish();
      }
      rtl::WireInput in;
      // Adversarial host timing: random stalls on both directions.
      in.tx_ready = rng.Below(8) != 0;
      bool offering = sent < command.size() && last_real.rx_ready && rng.Below(4) != 0;
      if (offering) {
        in.rx_valid = true;
        in.rx_data = command[sent];
      }
      rtl::WireSample real_sample = real->Tick(in);
      rtl::WireSample ideal_sample = ideal.Tick(in);
      result.cycles++;
      if (!(real_sample == ideal_sample)) {
        result.divergence = "wire divergence at cycle " + std::to_string(result.cycles) +
                            " (command " + std::to_string(c) + "): real {" +
                            rtl::FormatSample(real_sample) + "} ideal {" +
                            rtl::FormatSample(ideal_sample) + "}";
        return finish();
      }
      if (ideal.failed()) {
        result.divergence = "ideal world failed: " + ideal.failure();
        return finish();
      }
      if (offering) {
        sent++;
      }
      if (real_sample.tx_valid && in.tx_ready) {
        received++;
      }
      last_real = real_sample;
    }
    result.checks_run++;
  }
  result.ok = true;
  return finish();
}

}  // namespace

WireIprResult CheckWireIpr(const hsm::HsmSystem& system, const Bytes& initial_state,
                           const WireIprOptions& options) {
  TELEMETRY_SPAN("knox2/check_wire_ipr");
  const int trials = options.trials < 1 ? 1 : options.trials;
  WireIprResult result;
  if (trials == 1) {
    // Classic single session, seeded with `seed` itself — byte-compatible with
    // reports from before batched trials existed.
    result = RunWireIprTrial(system, initial_state, options, options.seed);
    result.telemetry.AddCounter("knox2/wire_ipr/trials", 1);
  } else {
    const size_t batch = options.trial_batch < 1 ? 1 : static_cast<size_t>(options.trial_batch);
    const size_t num_batches = (static_cast<size_t>(trials) + batch - 1) / batch;
    ThreadPool pool(options.num_threads);
    using Batch = std::vector<WireIprResult>;
    auto outcome = ParallelReduce<Batch>(
        pool, num_batches,
        [&](size_t b) {
          profiler::WorkSpan span("knox2/wire_ipr");
          const size_t lo = b * batch;
          const size_t hi = std::min(lo + batch, static_cast<size_t>(trials));
          if (span.active()) {
            span.Annotate("app=" + std::string(system.app().name()) + " trials=" +
                          std::to_string(lo) + ".." + std::to_string(hi - 1));
          }
          Batch out;
          out.reserve(hi - lo);
          for (size_t t = lo; t < hi; t++) {
            out.push_back(RunWireIprTrial(system, initial_state, options,
                                          SplitSeed(options.seed, t)));
            if (!out.back().ok) {
              break;  // Lower trials of this contiguous batch already ran.
            }
          }
          return out;
        },
        [](const Batch& b) { return !b.empty() && !b.back().ok; });
    // Fold batches in ascending order up to the settled failing batch: every batch
    // below it ran to completion (ParallelReduce contract), and within the failing
    // batch trials ran serially in order, so the failure folded here is the lowest
    // failing trial index — independent of thread count and batch boundaries
    // relative to any slicing with the same trial order.
    const size_t last = outcome.first_failure.value_or(num_batches - 1);
    result.ok = true;
    uint64_t folded_trials = 0;
    for (size_t b = 0; b <= last && result.ok; b++) {
      for (const WireIprResult& r : *outcome.results[b]) {
        result.cycles += r.cycles;
        result.checks_run += r.checks_run;
        result.telemetry.Merge(r.telemetry);
        folded_trials++;
        if (!r.ok) {
          result.ok = false;
          result.divergence = r.divergence;
          result.evidence = r.evidence;
          break;
        }
      }
    }
    result.telemetry.AddCounter("knox2/wire_ipr/trials", folded_trials);
  }
  if (!result.ok && result.evidence.has_value()) {
    telemetry::Telemetry::Global().RecordEvidence(*result.evidence);
  }
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

}  // namespace parfait::knox2
