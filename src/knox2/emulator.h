// The Knox2 circuit-level emulator template and the wire-level IPR check (figure 5 at
// the SoC level, sections 5.2–5.3).
//
// The emulator runs a *fresh instance* of the circuit with dummy persistent data (the
// circuit structure and ROM contents are public). It watches its instance's internal
// state: when the instance is about to execute handle(), it reads the command bytes
// out of the instance's RAM and queries the specification (the assembly-level
// whole-command machine); when the instance reaches the response hand-off point it
// injects the specification's response into the instance's memory, so that all future
// wire behaviour matches the real circuit — *provided the implementation leaks
// nothing*, which is exactly what the check establishes.
//
// CheckWireIpr drives the real world (circuit with real secrets) and the ideal world
// (spec + emulator) with identical, adversarially-chosen wire inputs and compares
// every output wire on every cycle.
#ifndef PARFAIT_KNOX2_EMULATOR_H_
#define PARFAIT_KNOX2_EMULATOR_H_

#include <memory>
#include <optional>
#include <string>

#include "src/hsm/hsm_system.h"
#include "src/support/rng.h"
#include "src/support/telemetry.h"

namespace parfait::knox2 {

// The ideal world: specification machine + circuit-emulator (section 5.3's template).
class IdealWorld {
 public:
  // spec_state: the specification's current state (encoded). The emulator's circuit
  // instance starts from dummy (all-zero) persistent data.
  IdealWorld(const hsm::HsmSystem& system, const Bytes& spec_state);

  // One cycle: advances the emulator's circuit instance under the given inputs,
  // performing spec queries and response injection at the template's watch points.
  rtl::WireSample Tick(const rtl::WireInput& in);

  const Bytes& spec_state() const { return spec_state_; }
  bool failed() const { return failed_; }
  const std::string& failure() const { return failure_; }

 private:
  const hsm::HsmSystem* system_;
  std::unique_ptr<soc::Soc> circuit_;
  Bytes spec_state_;
  uint32_t handle_addr_;
  uint32_t inject_addr_;  // write_response entry: the response hand-off watch point.
  bool at_handle_ = false;      // Edge detector for the handle() watch point.
  bool query_pending_ = false;  // A spec response awaits injection.
  Bytes pending_response_;
  bool failed_ = false;
  std::string failure_;
};

struct WireIprOptions {
  int commands = 4;             // Spec-level operations to drive through both worlds.
  uint64_t cycles_per_command = 40'000'000;
  int noise_bytes = 2;          // Adversarial raw bytes injected between commands.
  uint64_t seed = 555;
  // Batched independent trials. 1 keeps the classic single session, seeded with
  // `seed` itself (byte-compatible with older reports). Above 1, trial t drives a
  // full session from its own stream SplitSeed(seed, t); trials are scheduled in
  // contiguous batches of `trial_batch` across `num_threads` pool lanes and folded
  // with lowest-trial failure settlement, so the report (counters, cycles, the
  // settled counterexample) is identical at any thread count and batch size.
  int trials = 1;
  int trial_batch = 2;
  int num_threads = 1;  // 0 = all hardware threads.
};

struct WireIprResult {
  bool ok = false;
  std::string divergence;
  uint64_t cycles = 0;
  // Commands fully driven through both worlds (the unified trials-attempted/executed
  // accounting; a failing command is not counted as executed).
  int checks_run = 0;
  // knox2/wire_ipr/* counters, folded over trials in trial order up to the settled
  // failure — seed- and schedule-deterministic.
  telemetry::TelemetrySnapshot telemetry;
  // On failure: the failing trial's seed, command index, command bytes (hex), and
  // the divergence.
  std::optional<telemetry::Evidence> evidence;
};

// Checks SoC ≈_IPR[d] model-Asm at the wire level: identical adversarial inputs to the
// real world (circuit with `initial_state` secrets) and the ideal world (spec +
// emulator with dummy data); every output wire must match on every cycle.
WireIprResult CheckWireIpr(const hsm::HsmSystem& system, const Bytes& initial_state,
                           const WireIprOptions& options = {});

}  // namespace parfait::knox2

#endif  // PARFAIT_KNOX2_EMULATOR_H_
