// Fine-grained work units for the circuit-level checkers.
//
// The coarse Knox2 obligations (one co-simulation or self-composition per command)
// leave Table 4 dominated by single long rows: the PicoLite ECDSA signer spends tens
// of millions of cycles in one indivisible task, so adding threads stops helping once
// every other row has drained. This module re-slices one handle() invocation into
// independently runnable *segments* delimited by machine-level snapshots, so the
// dominant row decomposes across lanes:
//
//   1. PlanHandleUnits boots the circuit once to learn the calling context at
//      handle() entry (sp, ra, the full register file), then runs the abstract
//      machine twice:
//        - pass 1 (sentinel return, untouched registers) is the classic monolithic
//          pre-run under the full abstract semantics — undefined-value tracking
//          included — and fixes the instruction count N;
//        - pass 2 re-runs with the circuit's ra and entry registers injected and
//          captures a dirty-page snapshot at the first *taken control transfer* at
//          or after every multiple of `unit_instructions`.
//      Boundaries sit only at taken control transfers because right after one both
//      CPU models are in a state exactly equal to Cpu::Reset(target) (the fetch
//      bubble / FSM fetch phase — see Cpu::at_boundary), which is the only circuit
//      state a snapshot can reconstruct.
//   2. RunCosimUnit / RunSelfCompUnit execute one segment: boot a fresh SoC by
//      replaying the wire protocol (peripheral state is boot-determined), reset the
//      CPU at the snapshot pc, inject the snapshot registers and dirty pages, lease
//      a journaled machine from the ModelAsm pool, restore the same snapshot, and
//      run the segment under the usual lockstep/joint loop. Each unit ends with a
//      *boundary guard*: the circuit's registers and every snapshot page must equal
//      the next snapshot bit-for-bit, so unit-local success composes into
//      whole-command correctness.
//   3. FoldCosimUnits / FoldSelfCompUnits combine unit results in ordinal order into
//      the same report types the monolithic checkers produce. Every unit always
//      runs (no cross-unit short-circuit), and the fold settles on the lowest
//      failing ordinal, so reports are byte-identical at any thread count and under
//      any sharding of the unit list.
//
// Soundness of the raw-bits snapshots: the machine and the circuit zero-initialize
// RAM identically and (once the entry registers are injected) execute the same
// stores with the same values, so "machine bits == circuit bits" holds for every
// register and every RAM byte outside the response buffer (whose pre-completion
// contents are unspecified, exactly as in the monolithic co-simulation). Pass 1
// keeps the full undefined-value discipline: any program whose control flow or
// addressing depends on undefined data fails the plan and falls back to the
// monolithic checker. Slicing never weakens an obligation — it adds boundary
// checks on top of the same per-instruction lockstep.
#ifndef PARFAIT_KNOX2_UNITS_H_
#define PARFAIT_KNOX2_UNITS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/knox2/cosim.h"
#include "src/knox2/leakage.h"
#include "src/riscv/machine.h"
#include "src/soc/soc.h"

namespace parfait::knox2 {

// Drives the SoC's wire interface: presents command bytes with flow control and
// collects response bytes. Shared by the monolithic co-simulation and every unit
// runner (each unit replays the boot through one of these).
class WireDriver {
 public:
  WireDriver(soc::Soc* soc, const Bytes& command) : soc_(soc), command_(command) {
    last_.rx_ready = true;
  }

  // One cycle with the host's standing behaviour (offer next command byte, accept tx).
  void Tick() {
    rtl::WireInput in;
    in.tx_ready = true;
    bool offering = sent_ < command_.size() && last_.rx_ready;
    if (offering) {
      in.rx_valid = true;
      in.rx_data = command_[sent_];
    }
    rtl::WireSample s = soc_->Tick(in);
    if (offering) {
      sent_++;
    }
    if (s.tx_valid) {
      response_.push_back(s.tx_data);
    }
    last_ = s;
  }

  const Bytes& response() const { return response_; }

 private:
  soc::Soc* soc_;
  Bytes command_;
  size_t sent_ = 0;
  Bytes response_;
  rtl::WireSample last_;
};

// A segmentation of one handle() invocation. When !ok, `error` says why slicing is
// unavailable and the caller falls back to the monolithic checker (which handles
// every case; the plan is purely an optimization).
struct HandlePlan {
  bool ok = false;
  std::string error;

  uint32_t circuit_sp = 0;                // Circuit sp at handle() entry.
  uint32_t circuit_ra = 0;                // Circuit ra at handle() entry.
  std::array<uint32_t, 32> entry_regs{};  // Full register file bits at handle() entry.
  uint64_t boot_cycles = 0;               // Soc cycles from power-on to handle() entry.
  uint64_t total_instructions = 0;        // Instructions handle() retires.

  // RAM pages where the booted circuit differs from the prototype image at handle()
  // entry (the caller's stack frames above sp, boot-written system globals). The
  // aligned re-run and unit 0 write these over the machine's RAM so that "machine
  // bits == circuit bits" holds for every byte from the first instruction on.
  std::vector<riscv::Machine::PageSnapshot> entry_patches;

  // boundary_instrets[i] instructions into handle(), the machine (and the circuit,
  // one Cpu::at_boundary drain later) sits at snapshots[i]. Unit k covers
  // [unit_begin(k), unit_end(k)) instructions; unit 0 starts at handle() entry.
  std::vector<uint64_t> boundary_instrets;
  std::vector<riscv::Machine::Snapshot> snapshots;

  size_t num_units() const { return boundary_instrets.size() + 1; }
  uint64_t unit_begin(size_t k) const { return k == 0 ? 0 : boundary_instrets[k - 1]; }
  uint64_t unit_end(size_t k) const {
    return k + 1 == num_units() ? total_instructions : boundary_instrets[k];
  }
};

// Builds the plan for one (state, command) invocation: boot capture, counting
// pre-run, snapshot pre-run. Deterministic — the same inputs produce the same plan
// on every thread, backend, and process, which is what lets shards plan
// independently and still agree on unit ordinals.
HandlePlan PlanHandleUnits(const hsm::HsmSystem& system, const Bytes& state,
                           const Bytes& command, uint64_t unit_instructions,
                           uint64_t max_instructions = 500'000'000);

// One co-simulation segment's outcome. Stats cover only this unit's work (its boot
// replay cycles appear in stats.soc_cycles, its lockstep cycles in stats.cycles).
struct CosimUnitResult {
  bool ok = false;
  std::string divergence;
  SyncStats stats;
  Bytes final_state;     // Machine-side post-state (last unit only).
  Bytes final_response;  // Machine-side response (last unit only).
};

// Runs co-simulation unit `k` of `plan`. Units are independent: any subset may run
// on any thread or in any process, in any order.
CosimUnitResult RunCosimUnit(const hsm::HsmSystem& system, const Bytes& state,
                             const Bytes& command, const HandlePlan& plan, size_t k,
                             const CosimOptions& options);

// Folds per-unit results (ordinal order) into the monolithic report shape: summed
// stats, lowest-ordinal failure, telemetry snapshot, evidence. Also merges the
// snapshot into the global registry, mirroring CosimHandleStep.
CosimResult FoldCosimUnits(const hsm::HsmSystem& system, const Bytes& state,
                           const Bytes& command, const std::vector<CosimUnitResult>& units);

// One unit's telemetry delta: its sync counters, one "units" tick, and (unit 0
// only) the per-command tick. Merging the deltas of all a command's units
// reproduces FoldCosimUnits' counters exactly, which is what lets a sharded run
// record telemetry per unit and still merge to the unsharded totals. (The
// cycles_per_command histogram is a whole-command statistic and lives only in the
// fold, not in any unit's delta.)
telemetry::TelemetrySnapshot CosimUnitTelemetry(const CosimUnitResult& unit, size_t k);

// True when two plans slice identically (same boot length, instruction count, and
// boundary instrets) — the precondition for pairing them in sliced self-composition.
// Misaligned plans mean the two instances' instruction streams differ, which the
// monolithic joint loop is the right tool to judge.
bool PlansAligned(const HandlePlan& a, const HandlePlan& b);

// One self-composition segment's outcome.
struct SelfCompUnitResult {
  bool ok = false;
  std::string divergence;
  uint64_t cycles = 0;  // Compared cycles in this unit (boot replay + segment).
};

// Runs self-composition unit `k`: both instances are reconstructed from their own
// plans' snapshots and ticked under identical inputs with the handshake wires
// compared every cycle — the joint loop body, per segment. A unit whose instances
// take different cycle counts to finish the segment reports a divergence (an
// internal timing skew is a timing leak in the making; aligned plans plus
// stream-determined wire timing make equal counts the passing case).
SelfCompUnitResult RunSelfCompUnit(const hsm::HsmSystem& system, const Bytes& state_a,
                                   const Bytes& state_b, const Bytes& command,
                                   const HandlePlan& plan_a, const HandlePlan& plan_b,
                                   size_t k, uint64_t max_cycles);

// Folds per-unit self-composition results in ordinal order (summed cycles,
// lowest-ordinal failure, telemetry, evidence; global-registry merge included).
SelfCompResult FoldSelfCompUnits(const hsm::HsmSystem& system, const Bytes& state_a,
                                 const Bytes& state_b, const Bytes& command,
                                 const std::vector<SelfCompUnitResult>& units);

// Self-composition analog of CosimUnitTelemetry: cycle counters for one unit plus
// the "units" tick (and the per-command tick on unit 0). Deltas merge to the
// FoldSelfCompUnits counters, minus the whole-command cycles_per_command histogram.
telemetry::TelemetrySnapshot SelfCompUnitTelemetry(const SelfCompUnitResult& unit,
                                                   size_t k);

}  // namespace parfait::knox2

#endif  // PARFAIT_KNOX2_UNITS_H_
