// Leakage checkers at the circuit level.
//
// Two complementary techniques (the paper contrasts them in related work):
//   - Self-composition (cycle-accurate ground truth): run two circuit instances whose
//     states differ only in secrets under identical wire inputs; every cycle's
//     handshake wires (tx_valid, rx_ready) must match. Payload data may legitimately
//     differ (responses are functions of the secrets by specification); the handshake
//     pattern is the timing channel. This is the operational core of "the emulator
//     cannot tell" in the IPR definition.
//   - Taint tracking (a leakage-model checker à la constant-time verifiers): secrets
//     are tainted at the FRAM and propagation into branches, memory addresses, or
//     variable-latency functional-unit operands is flagged. Fast but model-dependent —
//     exactly the class of tool whose soundness the paper points out rests on the
//     hardware matching the model.
#ifndef PARFAIT_KNOX2_LEAKAGE_H_
#define PARFAIT_KNOX2_LEAKAGE_H_

#include <string>
#include <vector>

#include "src/hsm/hsm_system.h"

namespace parfait::knox2 {

struct SelfCompOptions {
  uint64_t max_cycles_per_command = 600'000'000;
};

struct SelfCompResult {
  bool ok = false;
  std::string divergence;
  uint64_t cycles = 0;
};

// Runs both instances under identical inputs for the given command sequence and
// compares the handshake wires cycle-by-cycle.
SelfCompResult CheckSelfComposition(const hsm::HsmSystem& system, const Bytes& state_a,
                                    const Bytes& state_b, const std::vector<Bytes>& commands,
                                    const SelfCompOptions& options = {});

// Returns a copy of `state` with fresh random bytes in the app's secret ranges (the
// canonical "differs only in secrets" partner state).
Bytes MakeSecretVariant(const hsm::App& app, const Bytes& state, Rng& rng);

// Taint-mode run: builds a tainted SoC from `state`, executes the commands, and
// returns the recorded taint-policy violations.
std::vector<soc::TaintLeak> RunTaintCheck(const hsm::HsmSystem& system, const Bytes& state,
                                          const std::vector<Bytes>& commands,
                                          uint64_t max_cycles_per_command = 600'000'000);

}  // namespace parfait::knox2

#endif  // PARFAIT_KNOX2_LEAKAGE_H_
