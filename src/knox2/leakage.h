// Leakage checkers at the circuit level.
//
// Two complementary techniques (the paper contrasts them in related work):
//   - Self-composition (cycle-accurate ground truth): run two circuit instances whose
//     states differ only in secrets under identical wire inputs; every cycle's
//     handshake wires (tx_valid, rx_ready) must match. Payload data may legitimately
//     differ (responses are functions of the secrets by specification); the handshake
//     pattern is the timing channel. This is the operational core of "the emulator
//     cannot tell" in the IPR definition.
//   - Taint tracking (a leakage-model checker à la constant-time verifiers): secrets
//     are tainted at the FRAM and propagation into branches, memory addresses, or
//     variable-latency functional-unit operands is flagged. Fast but model-dependent —
//     exactly the class of tool whose soundness the paper points out rests on the
//     hardware matching the model.
//
// Both checkers decompose a command vector into independent per-command obligations:
// command c runs on a freshly powered-on SoC whose FRAM holds the specification-
// advanced state after commands 0..c-1 (power-cycling between commands is exactly the
// figure 9 crash-safety model, and Starling/cosim separately verify that the
// implementation tracks the specification state). The obligations are scheduled
// across `num_threads` worker threads (0 = all hardware threads) — the per-command
// decomposition is the same at every thread count, so results are bit-identical
// regardless of parallelism; see src/support/parallel.h.
#ifndef PARFAIT_KNOX2_LEAKAGE_H_
#define PARFAIT_KNOX2_LEAKAGE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/contract/contract.h"
#include "src/hsm/hsm_system.h"
#include "src/support/telemetry.h"

namespace parfait::knox2 {

struct SelfCompOptions {
  uint64_t max_cycles_per_command = 600'000'000;
  // Per-command obligations run concurrently on this many threads (0 = all hardware
  // threads). Purely a scheduling knob: outcomes are thread-count independent.
  int num_threads = 0;
  // Work-unit slicing (src/knox2/units.h), applied to single-command checks whose
  // two per-state plans align: both instances are segmented at the same
  // instruction boundaries and each segment becomes an independent paired
  // obligation. 0 (or misaligned plans, or multi-command sequences) keeps the
  // classic joint loop.
  uint64_t unit_instructions = 0;
};

struct SelfCompResult {
  bool ok = false;
  std::string divergence;
  uint64_t cycles = 0;
  // Per-command obligations executed, folded in command order up to the settled
  // failure (the unified trials-attempted/executed accounting).
  int checks_run = 0;
  // knox2/selfcomp/* counters and the cycles-per-command histogram, bit-identical at
  // every thread count.
  telemetry::TelemetrySnapshot telemetry;
  // On failure: command index, command hex, and both power-on states (hex).
  std::optional<telemetry::Evidence> evidence;
};

// Runs both instances under identical inputs for the given command sequence and
// compares the handshake wires cycle-by-cycle. On failure, the reported divergence
// is always the one in the lowest-index command, and `cycles` counts the cycles
// simulated for commands up to and including it.
SelfCompResult CheckSelfComposition(const hsm::HsmSystem& system, const Bytes& state_a,
                                    const Bytes& state_b, const std::vector<Bytes>& commands,
                                    const SelfCompOptions& options = {});

// Returns a copy of `state` with fresh random bytes in the app's secret ranges (the
// canonical "differs only in secrets" partner state).
Bytes MakeSecretVariant(const hsm::App& app, const Bytes& state, Rng& rng);

struct TaintCheckOptions {
  uint64_t max_cycles_per_command = 600'000'000;
  // Same scheduling knob as SelfCompOptions::num_threads.
  int num_threads = 0;
  // When set, the emulator's sink set is configured from this leakage contract
  // (only the observations the contract declares are recorded) and the run refuses
  // a contract whose SoC id mismatches the system's. When null, every sink stays
  // armed — the conservative legacy behavior, which over-approximates on SoCs
  // whose contract marks a class non-leaking (e.g. fixed-latency multiplies).
  const contract::LeakageContract* contract = nullptr;
};

struct TaintCheckResult {
  // Set when the check refused to run (contract/SoC mismatch); no leaks were
  // collected in that case.
  std::string error;
  // Recorded taint-policy violations, concatenated in command order.
  std::vector<soc::TaintLeak> leaks;
  // Per-command obligations executed (every command always runs; a fault or timeout
  // only loses propagation within its own command).
  int checks_run = 0;
  // knox2/taint/* counters, bit-identical at every thread count.
  telemetry::TelemetrySnapshot telemetry;
};

// Taint-mode run: for each command, builds a tainted SoC from the specification-
// advanced state, executes the command, and collects the recorded taint-policy
// violations, concatenated in command order.
TaintCheckResult RunTaintCheck(const hsm::HsmSystem& system, const Bytes& state,
                               const std::vector<Bytes>& commands,
                               const TaintCheckOptions& options = {});

// The emulator sink set a leakage contract induces: a class's sink is armed iff the
// contract declares an observation for it.
soc::TaintSinks SinksFromContract(const contract::LeakageContract& contract);

}  // namespace parfait::knox2

#endif  // PARFAIT_KNOX2_LEAKAGE_H_
