// Knox2 assembly-circuit synchronization (sections 5.3–5.4).
//
// Proves functional-physical simulation for one whole-command step by co-simulating
// the abstract RV32IM machine (Riscette analog, instruction-by-instruction) with the
// cycle-level SoC, synchronizing state at the figure 11 sync points:
//   - branches and jumps: synchronize registers (and buffers at calls/returns),
//   - arithmetic: registers only, implicitly via the retirement-stream comparison,
//   - a periodic fallback: buffers every `buffer_sync_interval` instructions.
// The figure 10 mappings are direct here: the register mapping is index-to-index (the
// CPU models expose the architectural register file), and the pointer mapping is the
// identity on flat addresses (model-Asm uses the SoC's own buffer addresses).
//
// Undef handling follows the paper: registers that are undefined in the abstract
// machine are left unconstrained in the circuit ("leave the circuit register as-is").
#ifndef PARFAIT_KNOX2_COSIM_H_
#define PARFAIT_KNOX2_COSIM_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/hsm/hsm_system.h"
#include "src/support/telemetry.h"

namespace parfait::knox2 {

struct CosimOptions {
  uint64_t max_instructions = 500'000'000;
  uint64_t buffer_sync_interval = 50'000;  // Instructions between periodic buffer syncs.
  uint64_t max_cycles_per_instruction = 64;
  // Work-unit slicing (src/knox2/units.h). 0 keeps the classic monolithic
  // co-simulation. Nonzero segments handle() into ~unit_instructions-sized units
  // run across `num_threads` pool lanes (0 = all hardware threads) and folded in
  // ordinal order — byte-identical reports at any thread count for a given
  // slicing. When no plan exists (short command, undefined-value-dependent control
  // flow, stack overflow, ...) the monolithic path runs unchanged.
  uint64_t unit_instructions = 0;
  int num_threads = 1;
};

// Per-category synchronization statistics (the figure 11 reproduction).
struct SyncStats {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t branch_syncs = 0;    // Conditional branches: registers.
  uint64_t call_syncs = 0;      // jal/jalr (entry/exit): registers + buffers.
  uint64_t periodic_syncs = 0;  // Periodic buffer syncs.
  uint64_t registers_compared = 0;
  uint64_t bytes_compared = 0;
  uint64_t undef_skipped = 0;   // Registers skipped because the machine holds Vundef.
  uint64_t soc_cycles = 0;      // Total Soc::cycles() including boot and commit phases.
};

struct CosimResult {
  bool ok = false;
  std::string divergence;
  SyncStats stats;
  Bytes final_state;     // Machine-side post-state (valid when ok).
  Bytes final_response;  // Machine-side response (valid when ok).
  // knox2/cosim/* counters mirroring `stats`. Co-simulation is serial and
  // deterministic, so the snapshot is reproducible byte-for-byte.
  telemetry::TelemetrySnapshot telemetry;
  // On failure: the state/command bytes (hex) and progress at the divergence.
  std::optional<telemetry::Evidence> evidence;
};

// Co-simulates one handle() invocation: the abstract machine runs the whole-command
// step while the SoC processes the same command end-to-end (wire protocol, load_state,
// handle, store_state journal commit, write_response). Checks:
//   - the retirement streams agree instruction-for-instruction during handle,
//   - register/buffer state matches at every sync point,
//   - the journal commit leaves FRAM related to the machine state by the figure 9
//     refinement relation,
//   - the wire-level response equals the machine-level response.
CosimResult CosimHandleStep(const hsm::HsmSystem& system, const Bytes& state,
                            const Bytes& command, const CosimOptions& options = {});

}  // namespace parfait::knox2

#endif  // PARFAIT_KNOX2_COSIM_H_
