#include "src/knox2/cosim.h"

#include <sstream>
#include <vector>

#include "src/knox2/units.h"
#include "src/riscv/machine.h"
#include "src/soc/soc.h"
#include "src/support/bytes.h"
#include "src/support/parallel.h"
#include "src/support/profiler.h"
#include "src/support/status.h"
#include "src/support/telemetry.h"

namespace parfait::knox2 {

namespace {

using riscv::Machine;

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

// The wire driver lives in src/knox2/units.h now, shared with the unit runners.

// The co-simulation proper, against an already-built SoC. Factored out so the public
// wrapper can read Soc::cycles() and build the telemetry snapshot on every exit path.
CosimResult CosimOnSoc(const hsm::HsmSystem& system, soc::Soc* soc_ptr, const Bytes& state,
                       const Bytes& command, const CosimOptions& options) {
  CosimResult result;
  const auto& model = system.model_asm();
  const hsm::App& app = system.app();

  soc::Soc* soc = soc_ptr;
  WireDriver driver(soc, command);

  // Phase 1: run the circuit up to the call of handle() (read_command + load_state).
  {
    TELEMETRY_SPAN("knox2/cosim/phase1_boot");
    uint32_t handle_addr = model.handle_addr();
    uint64_t budget = 4'000'000;
    while (soc->cpu().pc() != handle_addr) {
      if (soc->cpu().halted() || budget-- == 0) {
        result.divergence =
            "circuit never reached handle() (fault: " + soc->cpu().fault() + ")";
        return result;
      }
      driver.Tick();
    }
  }

  // Build the abstract machine with its stack aligned to the circuit's (the pointer
  // mapping becomes the identity, figure 10).
  uint32_t circuit_sp = soc->cpu().reg(2).bits;
  Machine machine = model.PrepareCall(state, command, circuit_sp);
  // Account this machine's cache work in the global registry on every exit path,
  // the same way ModelAsm::Step does for its thread-local machines.
  struct CounterFlusher {
    Machine& m;
    ~CounterFlusher() { platform::ModelAsm::FlushMachineCounters(m); }
  } flusher{machine};

  // Phase 2: instruction-by-instruction co-simulation of handle().
  auto sync_registers = [&](uint64_t* counter) -> bool {
    (*counter)++;
    for (uint8_t r = 0; r < 32; r++) {
      riscv::Value v = machine.reg(r);
      if (!v.defined) {
        result.stats.undef_skipped++;
        continue;  // Vundef: leave the circuit register as-is (section 5.4).
      }
      // The abstract machine's top-level return address is the halt sentinel; the
      // circuit's links back into the system software's main loop.
      if (r == 1 && v.bits == Machine::kReturnSentinel) {
        result.stats.undef_skipped++;
        continue;
      }
      result.stats.registers_compared++;
      if (soc->cpu().reg(r).bits != v.bits) {
        std::ostringstream os;
        os << "register " << riscv::RegName(r) << " diverged at pc "
           << Hex(machine.pc()) << ": machine=" << Hex(v.bits)
           << " circuit=" << Hex(soc->cpu().reg(r).bits);
        result.divergence = os.str();
        return false;
      }
    }
    return true;
  };

  // During execution only the state and command buffers are synchronized; the
  // response buffer's pre-handle contents are dummy data in the circuit (the previous
  // response), so it is compared once handle() has fully (re)written it at exit.
  auto sync_buffers = [&](bool include_response) -> bool {
    struct Range {
      const char* name;
      uint32_t addr;
      uint32_t size;
    };
    std::vector<Range> ranges = {
        {"state", model.state_addr(), static_cast<uint32_t>(app.state_size())},
        {"command", model.command_addr(), static_cast<uint32_t>(app.command_size())},
    };
    if (include_response) {
      ranges.push_back(
          {"response", model.response_addr(), static_cast<uint32_t>(app.response_size())});
    }
    for (const Range& range : ranges) {
      Bytes machine_bytes = machine.ReadMemory(range.addr, range.size);
      Bytes circuit_bytes = soc->bus().ReadBytes(range.addr, range.size);
      result.stats.bytes_compared += range.size;
      if (machine_bytes != circuit_bytes) {
        result.divergence = std::string("buffer '") + range.name +
                            "' diverged during handle() at machine pc " + Hex(machine.pc());
        return false;
      }
    }
    return true;
  };

  {
    TELEMETRY_SPAN("knox2/cosim/phase2_handle");
    uint64_t since_buffer_sync = 0;
    while (true) {
      if (machine.pc() == Machine::kReturnSentinel) {
        break;  // handle() returned in the abstract machine.
      }
      if (result.stats.instructions >= options.max_instructions) {
        result.divergence = "instruction budget exceeded";
        return result;
      }
      auto instr = machine.PeekInstr();
      uint32_t instr_pc = machine.pc();
      auto step = machine.Step();
      if (step == Machine::StepResult::kFault) {
        result.divergence = "abstract machine fault: " + machine.fault_reason();
        return result;
      }
      result.stats.instructions++;
      // Advance the circuit until it retires the matching instruction.
      uint64_t retired_before = soc->cpu().retired();
      uint64_t cycle_budget = options.max_cycles_per_instruction;
      while (soc->cpu().retired() == retired_before) {
        if (soc->cpu().halted() || cycle_budget-- == 0) {
          result.divergence = "circuit stalled or faulted at machine pc " + Hex(instr_pc) +
                              (soc->cpu().fault().empty() ? "" : ": " + soc->cpu().fault());
          return result;
        }
        driver.Tick();
        result.stats.cycles++;
      }
      if (soc->cpu().last_retired_pc() != instr_pc) {
        result.divergence = "retirement stream diverged: machine at " + Hex(instr_pc) +
                            ", circuit retired " + Hex(soc->cpu().last_retired_pc());
        return result;
      }
      // Figure 11 sync points.
      if (instr.has_value()) {
        bool is_call_or_return =
            (instr->op == riscv::Op::kJal && instr->rd == 1) ||
            instr->op == riscv::Op::kJalr;
        if (riscv::IsBranch(instr->op) ||
            (riscv::IsJump(instr->op) && !is_call_or_return)) {
          if (!sync_registers(&result.stats.branch_syncs)) {
            return result;
          }
        } else if (is_call_or_return) {
          if (!sync_registers(&result.stats.call_syncs)) {
            return result;
          }
          if (!sync_buffers(/*include_response=*/false)) {
            return result;
          }
        }
      }
      if (++since_buffer_sync >= options.buffer_sync_interval) {
        since_buffer_sync = 0;
        result.stats.periodic_syncs++;
        if (!sync_buffers(/*include_response=*/false)) {
          return result;
        }
      }
    }
  }

  // Final buffer agreement (including the response) at handle() exit.
  if (!sync_buffers(/*include_response=*/true)) {
    return result;
  }
  result.final_state = machine.ReadMemory(model.state_addr(),
                                          static_cast<uint32_t>(app.state_size()));
  result.final_response = machine.ReadMemory(model.response_addr(),
                                             static_cast<uint32_t>(app.response_size()));

  // Phase 3: let the circuit journal the state and emit the response; then check the
  // figure 9 refinement relation and the wire-level response.
  TELEMETRY_SPAN("knox2/cosim/phase3_commit");
  uint64_t budget = 4'000'000;
  while (driver.response().size() < app.response_size()) {
    if (soc->cpu().halted() || budget-- == 0) {
      result.divergence = "circuit never produced the full response";
      return result;
    }
    driver.Tick();
  }
  if (driver.response() != result.final_response) {
    result.divergence = "wire-level response differs from the machine-level response";
    return result;
  }
  Bytes fram = soc->bus().DumpFram();
  uint32_t flag = LoadLe32(fram.data());
  uint32_t active_offset = 4 + (flag == 0 ? 0 : static_cast<uint32_t>(app.state_size()));
  Bytes active(fram.begin() + active_offset,
               fram.begin() + active_offset + app.state_size());
  if (active != result.final_state) {
    result.divergence = "journaled state violates the figure 9 refinement relation";
    return result;
  }

  result.ok = true;
  return result;
}

}  // namespace

CosimResult CosimHandleStep(const hsm::HsmSystem& system, const Bytes& state,
                            const Bytes& command, const CosimOptions& options) {
  TELEMETRY_SPAN("knox2/cosim_handle_step");
  if (options.unit_instructions > 0) {
    HandlePlan plan = PlanHandleUnits(system, state, command, options.unit_instructions,
                                      options.max_instructions);
    if (plan.ok && plan.num_units() > 1) {
      // Every unit always runs (no cross-unit short-circuit) and the fold settles
      // on the lowest ordinal, so the report is byte-identical at any thread count
      // and under any sharding of the unit list.
      ThreadPool pool(options.num_threads);
      std::vector<CosimUnitResult> units(plan.num_units());
      ParallelFor(pool, plan.num_units(), [&](size_t k) {
        units[k] = RunCosimUnit(system, state, command, plan, k, options);
      });
      return FoldCosimUnits(system, state, command, units);
    }
    // No viable plan: the monolithic path below handles every case.
  }
  profiler::WorkSpan work_span("knox2/cosim");
  if (work_span.active()) {
    // checker x command x power-on state: the command opcode byte and a short state
    // prefix identify the work unit without hauling the full buffers around.
    work_span.Annotate("app=" + std::string(system.app().name()) +
                       " cpu=" + soc::CpuKindName(system.options().cpu) +
                       " cmd=" + (command.empty() ? std::string("-")
                                                  : std::to_string(command[0])));
  }
  auto soc = system.NewSocWithFram(system.MakeFram(state));
  CosimResult result = CosimOnSoc(system, soc.get(), state, command, options);
  result.stats.soc_cycles = soc->cycles();

  const SyncStats& stats = result.stats;
  result.telemetry.AddCounter("knox2/cosim/commands", 1);
  result.telemetry.AddCounter("knox2/cosim/instructions", stats.instructions);
  result.telemetry.AddCounter("knox2/cosim/cycles", stats.cycles);
  result.telemetry.AddCounter("knox2/cosim/soc_cycles", stats.soc_cycles);
  result.telemetry.AddCounter("knox2/cosim/branch_syncs", stats.branch_syncs);
  result.telemetry.AddCounter("knox2/cosim/call_syncs", stats.call_syncs);
  result.telemetry.AddCounter("knox2/cosim/periodic_syncs", stats.periodic_syncs);
  result.telemetry.AddCounter("knox2/cosim/registers_compared", stats.registers_compared);
  result.telemetry.AddCounter("knox2/cosim/bytes_compared", stats.bytes_compared);
  result.telemetry.AddCounter("knox2/cosim/undef_skipped", stats.undef_skipped);
  result.telemetry.RecordValue("knox2/cosim/cycles_per_command", stats.cycles);
  if (!result.ok) {
    telemetry::Evidence evidence;
    evidence.checker = "knox2/cosim";
    evidence.Add("app", system.app().name());
    evidence.Add("state_hex", ToHex(state));
    evidence.Add("command_hex", ToHex(command));
    evidence.Add("instructions", stats.instructions);
    evidence.Add("cycles", stats.cycles);
    evidence.Add("divergence", result.divergence);
    result.evidence = evidence;
    telemetry::Telemetry::Global().RecordEvidence(evidence);
  }
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

}  // namespace parfait::knox2
