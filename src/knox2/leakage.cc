#include "src/knox2/leakage.h"

#include "src/support/status.h"

namespace parfait::knox2 {

SelfCompResult CheckSelfComposition(const hsm::HsmSystem& system, const Bytes& state_a,
                                    const Bytes& state_b, const std::vector<Bytes>& commands,
                                    const SelfCompOptions& options) {
  SelfCompResult result;
  const hsm::App& app = system.app();
  auto soc_a = system.NewSocWithFram(system.MakeFram(state_a));
  auto soc_b = system.NewSocWithFram(system.MakeFram(state_b));

  rtl::WireSample last_a;
  last_a.rx_ready = true;

  for (size_t c = 0; c < commands.size(); c++) {
    const Bytes& command = commands[c];
    PARFAIT_CHECK(command.size() == app.command_size());
    size_t sent = 0;
    size_t received = 0;
    uint64_t budget = options.max_cycles_per_command;
    while (received < app.response_size()) {
      if (budget-- == 0) {
        result.divergence = "cycle budget exceeded on command " + std::to_string(c);
        return result;
      }
      rtl::WireInput in;
      in.tx_ready = true;
      bool offering = sent < command.size() && last_a.rx_ready;
      if (offering) {
        in.rx_valid = true;
        in.rx_data = command[sent];
      }
      rtl::WireSample a = soc_a->Tick(in);
      rtl::WireSample b = soc_b->Tick(in);
      result.cycles++;
      // Handshake wires are the timing channel; payload may differ by specification.
      if (a.tx_valid != b.tx_valid || a.rx_ready != b.rx_ready) {
        result.divergence = "handshake divergence at cycle " + std::to_string(result.cycles) +
                            " (command " + std::to_string(c) + "): a {" +
                            rtl::FormatSample(a) + "} b {" + rtl::FormatSample(b) + "}";
        return result;
      }
      if (soc_a->cpu().halted() || soc_b->cpu().halted()) {
        result.divergence = "a circuit faulted during self-composition";
        return result;
      }
      if (offering) {
        sent++;
      }
      if (a.tx_valid) {
        received++;
      }
      last_a = a;
    }
  }
  result.ok = true;
  return result;
}

Bytes MakeSecretVariant(const hsm::App& app, const Bytes& state, Rng& rng) {
  Bytes variant = state;
  for (auto [offset, length] : app.SecretStateRanges()) {
    for (uint32_t i = 0; i < length; i++) {
      variant[offset + i] = rng.Byte();
    }
  }
  return variant;
}

std::vector<soc::TaintLeak> RunTaintCheck(const hsm::HsmSystem& system, const Bytes& state,
                                          const std::vector<Bytes>& commands,
                                          uint64_t max_cycles_per_command) {
  PARFAIT_CHECK_MSG(system.options().taint_tracking,
                    "RunTaintCheck needs an HsmSystem built with taint_tracking");
  auto soc = system.NewSocWithFram(system.MakeFram(state));
  system.SeedSecretTaint(*soc);
  soc::WireHost host(soc.get());
  for (const Bytes& command : commands) {
    auto resp = host.Transact(command, system.app().response_size(), max_cycles_per_command);
    if (!resp.has_value()) {
      break;  // Fault or timeout; any recorded leaks are still reported.
    }
  }
  return soc->bus().leaks();
}

}  // namespace parfait::knox2
