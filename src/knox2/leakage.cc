#include "src/knox2/leakage.h"

#include "src/hsm/secret_layout.h"
#include "src/knox2/units.h"
#include "src/support/bytes.h"
#include "src/support/parallel.h"
#include "src/support/profiler.h"
#include "src/support/status.h"
#include "src/support/telemetry.h"

namespace parfait::knox2 {

namespace {

// Advances an encoded app state through one command at the specification level:
// decodable commands step the spec, undecodable ones leave the state untouched
// (figure 6b). This is how the per-command decomposition reconstructs the state a
// command sequence reaches without simulating the circuit serially.
Bytes SpecAdvance(const hsm::App& app, Bytes state, const Bytes& command) {
  auto step = app.SpecStepEncoded(state, command);
  if (step.has_value()) {
    return step->first;
  }
  return state;
}

// Self-composition for a single command from a pair of power-on states: both
// instances boot from their FRAM images and process the command under identical wire
// inputs while the handshake wires are compared every cycle.
SelfCompResult SelfCompOneCommand(const hsm::HsmSystem& system, const Bytes& state_a,
                                  const Bytes& state_b, const Bytes& command,
                                  size_t command_index, uint64_t max_cycles) {
  TELEMETRY_SPAN("knox2/selfcomp_command");
  profiler::WorkSpan work_span("knox2/selfcomp");
  if (work_span.active()) {
    work_span.Annotate("app=" + std::string(system.app().name()) +
                       " cmd=" + std::to_string(command_index) +
                       " op=" + (command.empty() ? std::string("-")
                                                 : std::to_string(command[0])));
  }
  SelfCompResult result;
  const hsm::App& app = system.app();
  PARFAIT_CHECK(command.size() == app.command_size());
  auto soc_a = system.NewSocWithFram(system.MakeFram(state_a));
  auto soc_b = system.NewSocWithFram(system.MakeFram(state_b));

  rtl::WireSample last_a;
  last_a.rx_ready = true;

  size_t sent = 0;
  size_t received = 0;
  uint64_t budget = max_cycles;
  while (received < app.response_size()) {
    if (budget-- == 0) {
      result.divergence = "cycle budget exceeded on command " + std::to_string(command_index);
      return result;
    }
    rtl::WireInput in;
    in.tx_ready = true;
    bool offering = sent < command.size() && last_a.rx_ready;
    if (offering) {
      in.rx_valid = true;
      in.rx_data = command[sent];
    }
    rtl::WireSample a = soc_a->Tick(in);
    rtl::WireSample b = soc_b->Tick(in);
    result.cycles++;
    // Handshake wires are the timing channel; payload may differ by specification.
    if (a.tx_valid != b.tx_valid || a.rx_ready != b.rx_ready) {
      result.divergence = "handshake divergence at cycle " + std::to_string(result.cycles) +
                          " (command " + std::to_string(command_index) + "): a {" +
                          rtl::FormatSample(a) + "} b {" + rtl::FormatSample(b) + "}";
      return result;
    }
    if (soc_a->cpu().halted() || soc_b->cpu().halted()) {
      result.divergence = "a circuit faulted during self-composition (command " +
                          std::to_string(command_index) + ")";
      return result;
    }
    if (offering) {
      sent++;
    }
    if (a.tx_valid) {
      received++;
    }
    last_a = a;
  }
  result.ok = true;
  return result;
}

// Per-command starting states for a sequence: entry c holds the pair of states the
// specification reaches after commands 0..c-1. A cheap serial prefix scan (spec
// steps only — no circuit simulation) that makes the expensive circuit obligations
// independent.
std::vector<std::pair<Bytes, Bytes>> SpecPrefixStates(const hsm::HsmSystem& system,
                                                      const Bytes& state_a,
                                                      const Bytes& state_b,
                                                      const std::vector<Bytes>& commands) {
  std::vector<std::pair<Bytes, Bytes>> starts;
  starts.reserve(commands.size());
  Bytes a = state_a;
  Bytes b = state_b;
  for (const Bytes& command : commands) {
    starts.emplace_back(a, b);
    a = SpecAdvance(system.app(), std::move(a), command);
    b = SpecAdvance(system.app(), std::move(b), command);
  }
  return starts;
}

}  // namespace

SelfCompResult CheckSelfComposition(const hsm::HsmSystem& system, const Bytes& state_a,
                                    const Bytes& state_b, const std::vector<Bytes>& commands,
                                    const SelfCompOptions& options) {
  TELEMETRY_SPAN("knox2/check_self_composition");
  if (commands.empty()) {
    SelfCompResult result;
    result.ok = true;
    return result;
  }
  if (options.unit_instructions > 0 && commands.size() == 1) {
    HandlePlan plan_a =
        PlanHandleUnits(system, state_a, commands[0], options.unit_instructions);
    HandlePlan plan_b =
        PlanHandleUnits(system, state_b, commands[0], options.unit_instructions);
    if (PlansAligned(plan_a, plan_b) && plan_a.num_units() > 1) {
      ThreadPool pool(options.num_threads);
      std::vector<SelfCompUnitResult> units(plan_a.num_units());
      ParallelFor(pool, plan_a.num_units(), [&](size_t k) {
        units[k] = RunSelfCompUnit(system, state_a, state_b, commands[0], plan_a, plan_b,
                                   k, options.max_cycles_per_command);
      });
      return FoldSelfCompUnits(system, state_a, state_b, commands[0], units);
    }
    // Misaligned or unavailable plans: the joint loop below is the right judge.
  }
  auto starts = SpecPrefixStates(system, state_a, state_b, commands);

  ThreadPool pool(options.num_threads);
  auto outcome = ParallelReduce<SelfCompResult>(
      pool, commands.size(),
      [&](size_t c) {
        return SelfCompOneCommand(system, starts[c].first, starts[c].second, commands[c], c,
                                  options.max_cycles_per_command);
      },
      [](const SelfCompResult& r) { return !r.ok; });

  // Fold in command order: cycles up to (and including) the lowest failing command
  // are schedule-independent; commands beyond it raced the cancellation and are
  // excluded from the count. The telemetry snapshot comes from the same fold.
  SelfCompResult result;
  size_t last = outcome.first_failure.value_or(commands.size() - 1);
  for (size_t c = 0; c <= last; c++) {
    if (outcome.results[c].has_value()) {
      const SelfCompResult& one = *outcome.results[c];
      result.cycles += one.cycles;
      result.checks_run++;
      result.telemetry.AddCounter("knox2/selfcomp/commands", 1);
      // Two circuit instances tick per compared cycle.
      result.telemetry.AddCounter("knox2/selfcomp/cycles", one.cycles);
      result.telemetry.AddCounter("knox2/selfcomp/instance_cycles", 2 * one.cycles);
      result.telemetry.RecordValue("knox2/selfcomp/cycles_per_command", one.cycles);
    }
  }
  if (outcome.first_failure.has_value()) {
    size_t f = *outcome.first_failure;
    result.divergence = outcome.results[f]->divergence;
    telemetry::Evidence evidence;
    evidence.checker = "knox2/selfcomp";
    evidence.Add("app", system.app().name());
    evidence.Add("command_index", f);
    evidence.Add("command_hex", ToHex(commands[f]));
    evidence.Add("state_a_hex", ToHex(starts[f].first));
    evidence.Add("state_b_hex", ToHex(starts[f].second));
    evidence.Add("cycles", outcome.results[f]->cycles);
    evidence.Add("divergence", result.divergence);
    result.evidence = evidence;
    telemetry::Telemetry::Global().RecordEvidence(evidence);
  } else {
    result.ok = true;
  }
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

Bytes MakeSecretVariant(const hsm::App& app, const Bytes& state, Rng& rng) {
  Bytes variant = state;
  // Shared declaration with SoC taint seeding and the static analyzer: the three
  // checkers must agree on what is secret (src/hsm/secret_layout.h).
  for (const hsm::SecretRegion& r : hsm::SecretLayout::ForApp(app).state_regions) {
    for (uint32_t i = 0; i < r.length; i++) {
      variant[r.offset + i] = rng.Byte();
    }
  }
  return variant;
}

soc::TaintSinks SinksFromContract(const contract::LeakageContract& contract) {
  using contract::InstrClass;
  soc::TaintSinks sinks;
  sinks.branch = contract.Leaks(InstrClass::kBranch, contract::kObsTarget);
  sinks.jump = contract.Leaks(InstrClass::kJump, contract::kObsTarget);
  sinks.load = contract.Leaks(InstrClass::kLoad, contract::kObsAddress);
  sinks.store = contract.Leaks(InstrClass::kStore, contract::kObsAddress);
  sinks.mul = contract.Leaks(InstrClass::kMul, contract::kObsLatency);
  sinks.div = contract.Leaks(InstrClass::kDiv, contract::kObsLatency);
  return sinks;
}

TaintCheckResult RunTaintCheck(const hsm::HsmSystem& system, const Bytes& state,
                               const std::vector<Bytes>& commands,
                               const TaintCheckOptions& options) {
  TELEMETRY_SPAN("knox2/run_taint_check");
  PARFAIT_CHECK_MSG(system.options().taint_tracking,
                    "RunTaintCheck needs an HsmSystem built with taint_tracking");
  if (options.contract != nullptr) {
    std::string mismatch = contract::ContractMismatch(*options.contract, system.soc_id());
    if (!mismatch.empty()) {
      TaintCheckResult refused;
      refused.error = mismatch;
      return refused;
    }
  }
  auto starts = SpecPrefixStates(system, state, state, commands);

  // Every command is an independent obligation: fresh tainted SoC from the
  // spec-advanced state, one transaction, collect the violations. A fault or timeout
  // only loses propagation within its own command; recorded leaks are still reported.
  std::vector<std::vector<soc::TaintLeak>> per_command(commands.size());
  std::vector<uint64_t> cycles(commands.size(), 0);
  ThreadPool pool(options.num_threads);
  ParallelFor(pool, commands.size(), [&](size_t c) {
    TELEMETRY_SPAN("knox2/taint_command");
    profiler::WorkSpan work_span("knox2/taint");
    if (work_span.active()) {
      work_span.Annotate("app=" + std::string(system.app().name()) +
                         " cmd=" + std::to_string(c));
    }
    auto soc = system.NewSocWithFram(system.MakeFram(starts[c].first));
    if (options.contract != nullptr) {
      soc->bus().set_taint_sinks(SinksFromContract(*options.contract));
    }
    system.SeedSecretTaint(*soc);
    soc::WireHost host(soc.get());
    host.Transact(commands[c], system.app().response_size(), options.max_cycles_per_command);
    per_command[c] = soc->bus().leaks();
    cycles[c] = soc->cycles();
  });

  // Fold in command order (every command runs; no short-circuit to race).
  TaintCheckResult result;
  for (size_t c = 0; c < commands.size(); c++) {
    result.leaks.insert(result.leaks.end(), per_command[c].begin(), per_command[c].end());
    result.checks_run++;
    result.telemetry.AddCounter("knox2/taint/commands", 1);
    result.telemetry.AddCounter("knox2/taint/leaks", per_command[c].size());
    result.telemetry.AddCounter("knox2/taint/cycles", cycles[c]);
    result.telemetry.RecordValue("knox2/taint/leaks_per_command", per_command[c].size());
  }
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

}  // namespace parfait::knox2
