#include "src/knox2/units.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/hsm/hsm_system.h"
#include "src/soc/bus.h"
#include "src/support/bytes.h"
#include "src/support/profiler.h"
#include "src/support/status.h"
#include "src/support/telemetry.h"

namespace parfait::knox2 {

namespace {

using riscv::Machine;

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

// Flushes a leased/prepared machine's perf counters into the global registry on
// every exit path, the same way the monolithic co-simulation does.
struct CounterFlusher {
  Machine& m;
  ~CounterFlusher() { platform::ModelAsm::FlushMachineCounters(m); }
};

// Replays the wire protocol from power-on until the architectural pc reaches
// handle(). Peripheral and non-snapshot RAM state is entirely boot-determined, so
// every unit reconstructs it this way instead of hauling it in the snapshot.
bool BootToHandle(const hsm::HsmSystem& system, soc::Soc* soc, WireDriver* driver,
                  std::string* error) {
  uint32_t handle_addr = system.model_asm().handle_addr();
  uint64_t budget = 4'000'000;
  while (soc->cpu().pc() != handle_addr) {
    if (soc->cpu().halted() || budget-- == 0) {
      *error = "circuit never reached handle() (fault: " + soc->cpu().fault() + ")";
      return false;
    }
    driver->Tick();
  }
  return true;
}

// Runs exactly `steps` instructions. The step-limit return is the expected way to
// stop (with ra aligned to the circuit the machine never self-halts), so only real
// faults and unexpected halts are errors.
bool RunExactly(Machine& m, uint64_t steps, std::string* error) {
  if (steps == 0) {
    return true;
  }
  Machine::StepResult r = m.Run(steps);
  if (r == Machine::StepResult::kFault && m.fault_reason() == "step limit exceeded") {
    return true;
  }
  if (r == Machine::StepResult::kFault) {
    *error = "abstract machine fault: " + m.fault_reason();
  } else {
    *error = "abstract machine halted unexpectedly at " + Hex(m.pc());
  }
  return false;
}

// Prepares a machine as the aligned re-run uses it: circuit sp/ra, the circuit's
// entry register file, and the entry patches that reconcile boot-written RAM
// (stack frames above sp, system globals) with the prototype image. After this the
// machine's RAM and registers are bit-identical to the circuit's at handle()
// entry, which is what makes raw-bits snapshots exact circuit images.
void AlignMachineToEntry(Machine& m, const HandlePlan& plan) {
  for (const Machine::PageSnapshot& page : plan.entry_patches) {
    m.WriteMemory(page.addr, page.bytes);
  }
  for (uint8_t r = 1; r < 32; r++) {
    m.set_reg(r, riscv::Value::Defined(plan.entry_regs[r]));
  }
}

// Reconstructs a circuit at the start of unit k>0: reset at the snapshot pc (the
// boundary state of both CPU models equals Reset(pc) — see Cpu::at_boundary),
// inject the register file and every dirty page.
void InjectSnapshot(soc::Soc* soc, const Machine::Snapshot& snap) {
  soc->cpu().Reset(snap.pc);
  for (uint8_t r = 1; r < 32; r++) {
    soc->cpu().set_reg(r, rtl::Word::Clean(snap.regs[r]));
  }
  for (const Machine::PageSnapshot& page : snap.pages) {
    soc->bus().WriteBytes(page.addr, page.bytes);
  }
}

// Compares a circuit against a boundary snapshot bit-for-bit: pc, registers, and
// every snapshot page. Returns false with a divergence message; counts the
// comparisons into `stats` when given.
bool CheckBoundaryGuard(const soc::Soc& soc, const Machine::Snapshot& snap,
                        const char* who, SyncStats* stats, std::string* divergence) {
  if (soc.cpu().pc() != snap.pc) {
    *divergence = std::string(who) + " parked at pc " + Hex(soc.cpu().pc()) +
                  " instead of the boundary pc " + Hex(snap.pc);
    return false;
  }
  for (uint8_t r = 1; r < 32; r++) {
    if (stats != nullptr) {
      stats->registers_compared++;
    }
    if (soc.cpu().reg(r).bits != snap.regs[r]) {
      std::ostringstream os;
      os << who << " register " << riscv::RegName(r) << " diverged at the unit boundary ("
         << Hex(snap.pc) << "): circuit=" << Hex(soc.cpu().reg(r).bits)
         << " snapshot=" << Hex(snap.regs[r]);
      *divergence = os.str();
      return false;
    }
  }
  for (const Machine::PageSnapshot& page : snap.pages) {
    Bytes circuit = soc.bus().ReadBytes(page.addr, static_cast<uint32_t>(page.bytes.size()));
    if (stats != nullptr) {
      stats->bytes_compared += page.bytes.size();
    }
    if (circuit != page.bytes) {
      size_t i = 0;
      while (i < circuit.size() && circuit[i] == page.bytes[i]) {
        i++;
      }
      *divergence = std::string(who) + " memory diverged at the unit boundary: byte " +
                    Hex(page.addr + static_cast<uint32_t>(i));
      return false;
    }
  }
  return true;
}

}  // namespace

HandlePlan PlanHandleUnits(const hsm::HsmSystem& system, const Bytes& state,
                           const Bytes& command, uint64_t unit_instructions,
                           uint64_t max_instructions) {
  TELEMETRY_SPAN("knox2/plan_handle_units");
  HandlePlan plan;
  const auto& model = system.model_asm();
  if (unit_instructions == 0) {
    plan.error = "slicing disabled";
    return plan;
  }

  // Boot the circuit once to learn the calling context at handle() entry.
  auto soc = system.NewSocWithFram(system.MakeFram(state));
  WireDriver driver(soc.get(), command);
  if (!BootToHandle(system, soc.get(), &driver, &plan.error)) {
    return plan;
  }
  plan.boot_cycles = soc->cycles();
  for (uint8_t r = 0; r < 32; r++) {
    plan.entry_regs[r] = soc->cpu().reg(r).bits;
  }
  plan.circuit_ra = plan.entry_regs[1];
  plan.circuit_sp = plan.entry_regs[2];
  if (plan.circuit_ra == 0 || plan.circuit_sp == 0) {
    plan.error = "circuit entry context has no return address or stack pointer";
    return plan;
  }
  if (plan.entry_regs[10] != model.state_addr() || plan.entry_regs[11] != model.command_addr() ||
      plan.entry_regs[12] != model.response_addr()) {
    plan.error = "circuit handle() arguments do not match the model buffers";
    return plan;
  }

  // Pass 1: the classic pre-run under the full abstract semantics (pristine
  // prototype RAM, undefined-value tracking, sentinel return). Any firmware whose
  // control flow or addressing depends on undefined data faults here, and the
  // caller stays on the monolithic checker.
  {
    Machine pre = model.PrepareCall(state, command, plan.circuit_sp);
    CounterFlusher flusher{pre};
    Machine::StepResult run = pre.Run(max_instructions);
    if (run != Machine::StepResult::kHalt) {
      plan.error = "abstract pre-run did not complete: " +
                   (pre.fault_reason().empty() ? std::string("no fault recorded")
                                               : pre.fault_reason());
      return plan;
    }
    plan.total_instructions = pre.instret();
  }
  if (plan.total_instructions <= unit_instructions) {
    plan.error = "handle() fits in a single unit";
    return plan;
  }

  // Pass 2: the circuit-aligned re-run the snapshots are cut from.
  Machine m = model.PrepareCall(state, command, plan.circuit_sp, plan.circuit_ra);
  CounterFlusher flusher{m};

  // Reconcile boot-written RAM with the prototype, patching only pages that
  // actually differ so snapshots stay sparse.
  const uint32_t ram_base = soc::kRamBase;
  const uint32_t ram_size = soc->bus().config().ram_size;
  for (uint32_t off = 0; off < ram_size; off += Machine::kSnapshotPageSize) {
    uint32_t len = std::min(Machine::kSnapshotPageSize, ram_size - off);
    Bytes circuit = soc->bus().ReadBytes(ram_base + off, len);
    Bytes machine = m.ReadMemory(ram_base + off, len);
    if (circuit != machine) {
      Machine::PageSnapshot patch;
      patch.addr = ram_base + off;
      patch.bytes = circuit;
      m.WriteMemory(patch.addr, patch.bytes);
      plan.entry_patches.push_back(std::move(patch));
    }
  }
  for (uint8_t r = 1; r < 32; r++) {
    m.set_reg(r, riscv::Value::Defined(plan.entry_regs[r]));
  }

  // Cut a boundary at the first taken control transfer at or after every multiple
  // of unit_instructions: right after one, both CPU models sit in a state equal to
  // Reset(target), the only circuit state a snapshot can reconstruct.
  uint64_t next_target = unit_instructions;
  while (m.instret() < plan.total_instructions) {
    uint64_t target = std::min(next_target, plan.total_instructions);
    if (m.instret() < target) {
      if (!RunExactly(m, target - m.instret(), &plan.error)) {
        return plan;
      }
      continue;
    }
    if (m.instret() >= plan.total_instructions) {
      break;
    }
    // Step-search for the next taken control transfer.
    bool found = false;
    while (m.instret() < plan.total_instructions) {
      uint32_t before = m.pc();
      Machine::StepResult s = m.Step();
      if (s != Machine::StepResult::kOk) {
        plan.error = "abstract machine fault during boundary search: " + m.fault_reason();
        return plan;
      }
      if (m.pc() != before + 4) {
        found = m.instret() < plan.total_instructions;
        break;
      }
    }
    if (!found) {
      break;  // The rest of handle() is one straight run to the return.
    }
    Machine::Snapshot snap = m.CaptureSnapshot();
    for (const Machine::PageSnapshot& page : snap.pages) {
      if (page.addr < ram_base || page.addr >= ram_base + ram_size) {
        // Typically the stack grew past the circuit's RAM — exactly the class of
        // gap the monolithic checker exists to judge.
        plan.error = "machine state extends outside circuit RAM (page " + Hex(page.addr) + ")";
        return plan;
      }
    }
    plan.boundary_instrets.push_back(m.instret());
    plan.snapshots.push_back(std::move(snap));
    next_target = m.instret() + unit_instructions;
  }
  if (!RunExactly(m, plan.total_instructions - m.instret(), &plan.error)) {
    return plan;
  }
  if (m.pc() != plan.circuit_ra) {
    plan.error = "aligned re-run did not return to the circuit's return address";
    return plan;
  }
  if (plan.boundary_instrets.empty()) {
    plan.error = "no unit boundary found (no taken control transfer past the target)";
    return plan;
  }
  plan.ok = true;
  return plan;
}

CosimUnitResult RunCosimUnit(const hsm::HsmSystem& system, const Bytes& state,
                             const Bytes& command, const HandlePlan& plan, size_t k,
                             const CosimOptions& options) {
  TELEMETRY_SPAN("knox2/cosim_unit");
  PARFAIT_CHECK(plan.ok && k < plan.num_units());
  profiler::WorkSpan work_span("knox2/cosim");
  if (work_span.active()) {
    work_span.Annotate("app=" + std::string(system.app().name()) +
                       " cpu=" + soc::CpuKindName(system.options().cpu) +
                       " cmd=" + (command.empty() ? std::string("-")
                                                  : std::to_string(command[0])) +
                       " unit=" + std::to_string(k) + "/" + std::to_string(plan.num_units()));
  }
  CosimUnitResult result;
  const auto& model = system.model_asm();
  const hsm::App& app = system.app();
  const size_t last = plan.num_units() - 1;

  auto soc = system.NewSocWithFram(system.MakeFram(state));
  WireDriver driver(soc.get(), command);
  if (!BootToHandle(system, soc.get(), &driver, &result.divergence)) {
    return result;
  }
  // The boot replay must reproduce the planned calling context exactly.
  for (uint8_t r = 0; r < 32; r++) {
    if (soc->cpu().reg(r).bits != plan.entry_regs[r]) {
      result.divergence = std::string("boot replay diverged from the plan at register ") +
                          riscv::RegName(r);
      return result;
    }
  }

  Machine& machine = model.LeaseCall(state, command, plan.circuit_sp, plan.circuit_ra);
  CounterFlusher flusher{machine};
  if (k == 0) {
    AlignMachineToEntry(machine, plan);
  } else {
    const Machine::Snapshot& snap = plan.snapshots[k - 1];
    machine.RestoreSnapshot(snap);
    InjectSnapshot(soc.get(), snap);
  }

  // The figure 11 sync points, identical to the monolithic checker's.
  auto sync_registers = [&](uint64_t* counter) -> bool {
    (*counter)++;
    for (uint8_t r = 0; r < 32; r++) {
      riscv::Value v = machine.reg(r);
      if (!v.defined) {
        result.stats.undef_skipped++;
        continue;  // Vundef: leave the circuit register as-is (section 5.4).
      }
      if (r == 1 && v.bits == Machine::kReturnSentinel) {
        result.stats.undef_skipped++;
        continue;
      }
      result.stats.registers_compared++;
      if (soc->cpu().reg(r).bits != v.bits) {
        std::ostringstream os;
        os << "register " << riscv::RegName(r) << " diverged at pc " << Hex(machine.pc())
           << ": machine=" << Hex(v.bits) << " circuit=" << Hex(soc->cpu().reg(r).bits);
        result.divergence = os.str();
        return false;
      }
    }
    return true;
  };
  auto sync_buffers = [&](bool include_response) -> bool {
    struct Range {
      const char* name;
      uint32_t addr;
      uint32_t size;
    };
    std::vector<Range> ranges = {
        {"state", model.state_addr(), static_cast<uint32_t>(app.state_size())},
        {"command", model.command_addr(), static_cast<uint32_t>(app.command_size())},
    };
    if (include_response) {
      ranges.push_back(
          {"response", model.response_addr(), static_cast<uint32_t>(app.response_size())});
    }
    for (const Range& range : ranges) {
      Bytes machine_bytes = machine.ReadMemory(range.addr, range.size);
      Bytes circuit_bytes = soc->bus().ReadBytes(range.addr, range.size);
      result.stats.bytes_compared += range.size;
      if (machine_bytes != circuit_bytes) {
        result.divergence = std::string("buffer '") + range.name +
                            "' diverged during handle() at machine pc " + Hex(machine.pc());
        return false;
      }
    }
    return true;
  };

  // Lockstep over this unit's instruction span. Periodic buffer syncs fire at the
  // same *global* instruction indices as in the monolithic run, so the schedule of
  // syncs depends only on the slicing, not on which unit hosts them.
  const uint64_t begin = plan.unit_begin(k);
  const uint64_t todo = plan.unit_end(k) - begin;
  for (uint64_t i = 0; i < todo; i++) {
    auto instr = machine.PeekInstr();
    uint32_t instr_pc = machine.pc();
    Machine::StepResult step = machine.Step();
    if (step != Machine::StepResult::kOk) {
      result.divergence = "abstract machine fault: " +
                          (machine.fault_reason().empty() ? std::string("unexpected halt")
                                                          : machine.fault_reason());
      return result;
    }
    result.stats.instructions++;
    uint64_t retired_before = soc->cpu().retired();
    uint64_t cycle_budget = options.max_cycles_per_instruction;
    while (soc->cpu().retired() == retired_before) {
      if (soc->cpu().halted() || cycle_budget-- == 0) {
        result.divergence = "circuit stalled or faulted at machine pc " + Hex(instr_pc) +
                            (soc->cpu().fault().empty() ? "" : ": " + soc->cpu().fault());
        return result;
      }
      driver.Tick();
      result.stats.cycles++;
    }
    if (soc->cpu().last_retired_pc() != instr_pc) {
      result.divergence = "retirement stream diverged: machine at " + Hex(instr_pc) +
                          ", circuit retired " + Hex(soc->cpu().last_retired_pc());
      return result;
    }
    if (instr.has_value()) {
      bool is_call_or_return =
          (instr->op == riscv::Op::kJal && instr->rd == 1) || instr->op == riscv::Op::kJalr;
      if (riscv::IsBranch(instr->op) || (riscv::IsJump(instr->op) && !is_call_or_return)) {
        if (!sync_registers(&result.stats.branch_syncs)) {
          return result;
        }
      } else if (is_call_or_return) {
        if (!sync_registers(&result.stats.call_syncs)) {
          return result;
        }
        if (!sync_buffers(/*include_response=*/false)) {
          return result;
        }
      }
    }
    if ((begin + i + 1) % options.buffer_sync_interval == 0) {
      result.stats.periodic_syncs++;
      if (!sync_buffers(/*include_response=*/false)) {
        return result;
      }
    }
  }

  if (k < last) {
    // Drain the circuit into the boundary state (the fetch bubble / FSM fetch
    // phase after the segment's closing control transfer), then check the guard.
    const Machine::Snapshot& snap = plan.snapshots[k];
    uint64_t drain = options.max_cycles_per_instruction;
    while (!soc->cpu().at_boundary()) {
      if (soc->cpu().halted() || drain-- == 0) {
        result.divergence = "circuit failed to park at the unit boundary";
        return result;
      }
      driver.Tick();
      result.stats.cycles++;
    }
    if (machine.pc() != snap.pc) {
      result.divergence = "machine deviated from the plan at the unit boundary";
      return result;
    }
    if (!CheckBoundaryGuard(*soc, snap, "circuit", &result.stats, &result.divergence)) {
      return result;
    }
  } else {
    // Final unit: the machine returned into the circuit's caller; compare the
    // buffers (response included) and let the circuit commit (figure 9).
    if (machine.pc() != plan.circuit_ra) {
      result.divergence = "machine did not return to handle()'s caller";
      return result;
    }
    if (!sync_buffers(/*include_response=*/true)) {
      return result;
    }
    result.final_state =
        machine.ReadMemory(model.state_addr(), static_cast<uint32_t>(app.state_size()));
    result.final_response =
        machine.ReadMemory(model.response_addr(), static_cast<uint32_t>(app.response_size()));
    uint64_t budget = 4'000'000;
    while (driver.response().size() < app.response_size()) {
      if (soc->cpu().halted() || budget-- == 0) {
        result.divergence = "circuit never produced the full response";
        return result;
      }
      driver.Tick();
    }
    if (driver.response() != result.final_response) {
      result.divergence = "wire-level response differs from the machine-level response";
      return result;
    }
    Bytes fram = soc->bus().DumpFram();
    uint32_t flag = LoadLe32(fram.data());
    uint32_t active_offset = 4 + (flag == 0 ? 0 : static_cast<uint32_t>(app.state_size()));
    Bytes active(fram.begin() + active_offset,
                 fram.begin() + active_offset + app.state_size());
    if (active != result.final_state) {
      result.divergence = "journaled state violates the figure 9 refinement relation";
      return result;
    }
  }
  result.ok = true;
  result.stats.soc_cycles = soc->cycles();
  return result;
}

telemetry::TelemetrySnapshot CosimUnitTelemetry(const CosimUnitResult& unit, size_t k) {
  telemetry::TelemetrySnapshot t;
  const SyncStats& s = unit.stats;
  if (k == 0) {
    t.AddCounter("knox2/cosim/commands", 1);
  }
  t.AddCounter("knox2/cosim/units", 1);
  t.AddCounter("knox2/cosim/instructions", s.instructions);
  t.AddCounter("knox2/cosim/cycles", s.cycles);
  t.AddCounter("knox2/cosim/soc_cycles", s.soc_cycles);
  t.AddCounter("knox2/cosim/branch_syncs", s.branch_syncs);
  t.AddCounter("knox2/cosim/call_syncs", s.call_syncs);
  t.AddCounter("knox2/cosim/periodic_syncs", s.periodic_syncs);
  t.AddCounter("knox2/cosim/registers_compared", s.registers_compared);
  t.AddCounter("knox2/cosim/bytes_compared", s.bytes_compared);
  t.AddCounter("knox2/cosim/undef_skipped", s.undef_skipped);
  t.RecordValue("knox2/cosim/cycles_per_unit", s.cycles);
  return t;
}

CosimResult FoldCosimUnits(const hsm::HsmSystem& system, const Bytes& state,
                           const Bytes& command, const std::vector<CosimUnitResult>& units) {
  PARFAIT_CHECK(!units.empty());
  CosimResult result;
  size_t first_failure = units.size();
  for (size_t k = 0; k < units.size(); k++) {
    const SyncStats& s = units[k].stats;
    result.stats.instructions += s.instructions;
    result.stats.cycles += s.cycles;
    result.stats.branch_syncs += s.branch_syncs;
    result.stats.call_syncs += s.call_syncs;
    result.stats.periodic_syncs += s.periodic_syncs;
    result.stats.registers_compared += s.registers_compared;
    result.stats.bytes_compared += s.bytes_compared;
    result.stats.undef_skipped += s.undef_skipped;
    result.stats.soc_cycles += s.soc_cycles;
    result.telemetry.Merge(CosimUnitTelemetry(units[k], k));
    if (!units[k].ok && first_failure == units.size()) {
      first_failure = k;
    }
  }
  if (first_failure < units.size()) {
    result.divergence = units[first_failure].divergence;
  } else {
    result.ok = true;
    result.final_state = units.back().final_state;
    result.final_response = units.back().final_response;
  }

  const SyncStats& stats = result.stats;
  result.telemetry.RecordValue("knox2/cosim/cycles_per_command", stats.cycles);
  if (!result.ok) {
    telemetry::Evidence evidence;
    evidence.checker = "knox2/cosim";
    evidence.Add("app", system.app().name());
    evidence.Add("state_hex", ToHex(state));
    evidence.Add("command_hex", ToHex(command));
    evidence.Add("unit", first_failure);
    evidence.Add("units", units.size());
    evidence.Add("instructions", stats.instructions);
    evidence.Add("cycles", stats.cycles);
    evidence.Add("divergence", result.divergence);
    result.evidence = evidence;
    telemetry::Telemetry::Global().RecordEvidence(evidence);
  }
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

bool PlansAligned(const HandlePlan& a, const HandlePlan& b) {
  return a.ok && b.ok && a.boot_cycles == b.boot_cycles && a.circuit_sp == b.circuit_sp &&
         a.circuit_ra == b.circuit_ra && a.total_instructions == b.total_instructions &&
         a.boundary_instrets == b.boundary_instrets;
}

SelfCompUnitResult RunSelfCompUnit(const hsm::HsmSystem& system, const Bytes& state_a,
                                   const Bytes& state_b, const Bytes& command,
                                   const HandlePlan& plan_a, const HandlePlan& plan_b,
                                   size_t k, uint64_t max_cycles) {
  TELEMETRY_SPAN("knox2/selfcomp_unit");
  PARFAIT_CHECK(PlansAligned(plan_a, plan_b) && k < plan_a.num_units());
  profiler::WorkSpan work_span("knox2/selfcomp");
  if (work_span.active()) {
    work_span.Annotate("app=" + std::string(system.app().name()) +
                       " op=" + (command.empty() ? std::string("-")
                                                 : std::to_string(command[0])) +
                       " unit=" + std::to_string(k) + "/" +
                       std::to_string(plan_a.num_units()));
  }
  SelfCompUnitResult result;
  const hsm::App& app = system.app();
  PARFAIT_CHECK(command.size() == app.command_size());
  const size_t last = plan_a.num_units() - 1;
  uint32_t handle_addr = system.model_asm().handle_addr();

  auto soc_a = system.NewSocWithFram(system.MakeFram(state_a));
  auto soc_b = system.NewSocWithFram(system.MakeFram(state_b));

  rtl::WireSample last_a;
  last_a.rx_ready = true;
  size_t sent = 0;
  size_t received = 0;
  uint64_t budget = max_cycles;

  // One joint cycle under identical inputs (a's flow control, as in the monolithic
  // loop); the handshake wires are the timing channel and must match exactly.
  auto joint_tick = [&]() -> bool {
    if (budget-- == 0) {
      result.divergence = "cycle budget exceeded on unit " + std::to_string(k);
      return false;
    }
    rtl::WireInput in;
    in.tx_ready = true;
    bool offering = sent < command.size() && last_a.rx_ready;
    if (offering) {
      in.rx_valid = true;
      in.rx_data = command[sent];
    }
    rtl::WireSample a = soc_a->Tick(in);
    rtl::WireSample b = soc_b->Tick(in);
    result.cycles++;
    if (a.tx_valid != b.tx_valid || a.rx_ready != b.rx_ready) {
      result.divergence = "handshake divergence at cycle " + std::to_string(result.cycles) +
                          " (unit " + std::to_string(k) + "): a {" + rtl::FormatSample(a) +
                          "} b {" + rtl::FormatSample(b) + "}";
      return false;
    }
    if (soc_a->cpu().halted() || soc_b->cpu().halted()) {
      result.divergence =
          "a circuit faulted during self-composition (unit " + std::to_string(k) + ")";
      return false;
    }
    if (offering) {
      sent++;
    }
    if (a.tx_valid) {
      received++;
    }
    last_a = a;
    return true;
  };

  // Joint boot replay to handle() entry, handshake-compared like everything else.
  // Aligned plans imply equal boot lengths; an instance arriving alone is an
  // internal timing skew — a timing leak in the making — and is reported as such.
  while (soc_a->cpu().pc() != handle_addr || soc_b->cpu().pc() != handle_addr) {
    if ((soc_a->cpu().pc() == handle_addr) != (soc_b->cpu().pc() == handle_addr)) {
      result.divergence = "boot cycle-count divergence (unit " + std::to_string(k) + ")";
      return result;
    }
    if (!joint_tick()) {
      return result;
    }
  }

  uint64_t base_a = soc_a->cpu().retired();
  uint64_t base_b = soc_b->cpu().retired();
  if (k > 0) {
    InjectSnapshot(soc_a.get(), plan_a.snapshots[k - 1]);
    InjectSnapshot(soc_b.get(), plan_b.snapshots[k - 1]);
    base_a = 0;
    base_b = 0;
  }

  if (k < last) {
    // Run the segment: both instances must retire it and park at the boundary in
    // the same number of cycles (stream-determined timing makes equal counts the
    // passing case for aligned plans).
    const uint64_t target = plan_a.unit_end(k) - plan_a.unit_begin(k);
    while (true) {
      bool done_a = soc_a->cpu().retired() - base_a >= target && soc_a->cpu().at_boundary();
      bool done_b = soc_b->cpu().retired() - base_b >= target && soc_b->cpu().at_boundary();
      if (done_a != done_b) {
        result.divergence =
            "segment cycle-count divergence (unit " + std::to_string(k) + ")";
        return result;
      }
      if (done_a && done_b) {
        break;
      }
      if (soc_a->cpu().retired() - base_a > target || soc_b->cpu().retired() - base_b > target) {
        result.divergence =
            "segment overran the unit boundary (unit " + std::to_string(k) + ")";
        return result;
      }
      if (!joint_tick()) {
        return result;
      }
    }
    // Each instance must sit exactly on its own plan's boundary snapshot; this is
    // what lets unit-local verdicts compose into the whole-command verdict.
    if (!CheckBoundaryGuard(*soc_a, plan_a.snapshots[k], "instance a", nullptr,
                            &result.divergence) ||
        !CheckBoundaryGuard(*soc_b, plan_b.snapshots[k], "instance b", nullptr,
                            &result.divergence)) {
      return result;
    }
  } else {
    // Final unit: run through handle()'s return and the response emission, exactly
    // the monolithic termination condition.
    while (received < app.response_size()) {
      if (!joint_tick()) {
        return result;
      }
    }
  }
  result.ok = true;
  return result;
}

telemetry::TelemetrySnapshot SelfCompUnitTelemetry(const SelfCompUnitResult& unit,
                                                   size_t k) {
  telemetry::TelemetrySnapshot t;
  if (k == 0) {
    t.AddCounter("knox2/selfcomp/commands", 1);
  }
  t.AddCounter("knox2/selfcomp/units", 1);
  t.AddCounter("knox2/selfcomp/cycles", unit.cycles);
  t.AddCounter("knox2/selfcomp/instance_cycles", 2 * unit.cycles);
  t.RecordValue("knox2/selfcomp/cycles_per_unit", unit.cycles);
  return t;
}

SelfCompResult FoldSelfCompUnits(const hsm::HsmSystem& system, const Bytes& state_a,
                                 const Bytes& state_b, const Bytes& command,
                                 const std::vector<SelfCompUnitResult>& units) {
  PARFAIT_CHECK(!units.empty());
  SelfCompResult result;
  size_t first_failure = units.size();
  for (size_t k = 0; k < units.size(); k++) {
    result.cycles += units[k].cycles;
    result.telemetry.Merge(SelfCompUnitTelemetry(units[k], k));
    if (!units[k].ok && first_failure == units.size()) {
      first_failure = k;
    }
  }
  result.checks_run = 1;
  result.telemetry.RecordValue("knox2/selfcomp/cycles_per_command", result.cycles);
  if (first_failure < units.size()) {
    result.divergence = units[first_failure].divergence;
    telemetry::Evidence evidence;
    evidence.checker = "knox2/selfcomp";
    evidence.Add("app", system.app().name());
    evidence.Add("command_hex", ToHex(command));
    evidence.Add("state_a_hex", ToHex(state_a));
    evidence.Add("state_b_hex", ToHex(state_b));
    evidence.Add("unit", first_failure);
    evidence.Add("units", units.size());
    evidence.Add("cycles", result.cycles);
    evidence.Add("divergence", result.divergence);
    result.evidence = evidence;
    telemetry::Telemetry::Global().RecordEvidence(evidence);
  } else {
    result.ok = true;
  }
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

}  // namespace parfait::knox2
