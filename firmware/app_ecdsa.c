/* ECDSA certificate-signing HSM application (the paper's figure 4 running example).
 *
 * State  (72 bytes): [0..31] prf_key, [32..39] prf_counter (big-endian u64),
 *                    [40..71] sig_key.
 * Command (65 bytes): cmd[0] = tag.
 *   tag 1 (Initialize): cmd[1..32] = prf_key, cmd[33..64] = sig_key.
 *   tag 2 (Sign):       cmd[1..32] = 32-byte pre-hashed message.
 * Response (65 bytes): resp[0] = tag, rest payload.
 *   tag 1 = Initialized (payload zero)
 *   tag 2 = Signature Some (payload r||s)
 *   tag 3 = Signature None (payload zero)
 *   tag 0 = invalid command (whole response zero — the lockstep None case)
 *
 * Constant time with respect to the state: the only branches are on the public
 * command tag. The signature is computed unconditionally and masked (section 7.1), the
 * counter-max check and the counter increment are branchless, and the PRF counter
 * guarantees nonce uniqueness across operations.
 *
 * Depends on hash.c and p256.c.
 */

void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) {
    resp[i] = 0;
  }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    /* Initialize: install keys, reset the PRF counter. */
    for (u32 i = 0; i < 32; i = i + 1) {
      state[i] = cmd[1 + i];
    }
    for (u32 i = 32; i < 40; i = i + 1) {
      state[i] = 0;
    }
    for (u32 i = 0; i < 32; i = i + 1) {
      state[40 + i] = cmd[33 + i];
    }
    resp[0] = 1;
    return;
  }
  if (tag == 2) {
    /* Sign: branchless counter-max check (counter == 2^64 - 1). */
    u32 acc = 0xff;
    for (u32 i = 0; i < 8; i = i + 1) {
      acc = acc & (u32)state[32 + i];
    }
    u32 ismax = ~mask_nz(acc ^ 0xff); /* all-ones iff every counter byte is 0xff */

    /* Nonce = HMAC-SHA256(prf_key, counter) — computed unconditionally. */
    u8 nonce[32];
    hmac_sha256(nonce, state, state + 32, 8);

    u8 sig[64];
    u32 ok = ecdsa_sign_fw(sig, cmd + 1, state + 40, nonce);
    ok = ok & ~ismax;

    /* Increment the big-endian counter unless it was at max (constant time). */
    u32 carry = 1 & ~ismax;
    for (u32 i = 0; i < 8; i = i + 1) {
      u32 t = (u32)state[39 - i] + carry;
      state[39 - i] = (u8)t;
      carry = t >> 8;
    }

    resp[0] = (u8)((2 & ok) | (3 & ~ok));
    u8 m = (u8)ok;
    for (u32 i = 0; i < 64; i = i + 1) {
      resp[1 + i] = sig[i] & m;
    }
    return;
  }
  /* Unknown tag: the lockstep None case — state untouched, canonical zero response. */
}
