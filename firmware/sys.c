/* System software: the HSM execution loop of the paper's figure 1.
 *
 * This file is MiniC, compiled only for the SoC (it touches MMIO, so it is not part of
 * the dual-compiled application sources). It is deliberately structured so that no
 * step computes over secret values: read_command and write_response move public bytes,
 * and load_state / store_state copy the state buffer opaquely with a journaled commit.
 *
 * The firmware builder prepends an app-specific prelude defining STATE_SIZE,
 * COMMAND_SIZE, and RESPONSE_SIZE, and the app provides handle().
 */

enum {
  UART_STATUS = 0x80000000,
  UART_RXDATA = 0x80000004,
  UART_TXDATA = 0x80000008,
  FRAM_FLAG = 0x40000000,
  FRAM_COPY_A = 0x40000004
};

u8 sys_state[STATE_SIZE];
u8 sys_cmd[COMMAND_SIZE];
u8 sys_resp[RESPONSE_SIZE];

/* Step (1): read a fixed-size command from the I/O interface. */
void read_command(u8 *cmd) {
  for (u32 i = 0; i < COMMAND_SIZE; i = i + 1) {
    while ((*(volatile u32 *)UART_STATUS & 1) == 0) {
    }
    cmd[i] = (u8)*(volatile u32 *)UART_RXDATA;
  }
}

/* Step (5): write the fixed-size response to the I/O interface. */
void write_response(u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) {
    while ((*(volatile u32 *)UART_STATUS & 2) == 0) {
    }
    *(volatile u32 *)UART_TXDATA = (u32)resp[i];
  }
}

/* Step (2): load state from persistent memory. The journal flag selects the active
 * copy (figure 9's refinement relation): flag == 0 -> copy A, else copy B. The flag is
 * a public value (it alternates once per completed command), so branching on it does
 * not depend on secrets. */
void load_state(u8 *state) {
  u32 flag = *(volatile u32 *)FRAM_FLAG;
  u8 *src = (u8 *)FRAM_COPY_A;
  if (flag != 0) {
    src = src + STATE_SIZE;
  }
  for (u32 i = 0; i < STATE_SIZE; i = i + 1) {
    state[i] = src[i];
  }
}

/* Step (4): store state atomically. Write the *inactive* copy in full, then flip the
 * flag with a single word write — the commit point. A power cut before the flag write
 * leaves the old state; after it, the new state. */
void store_state(u8 *state) {
  u32 flag = *(volatile u32 *)FRAM_FLAG;
  u8 *dst = (u8 *)FRAM_COPY_A;
  if (flag == 0) {
    dst = dst + STATE_SIZE;
  }
  for (u32 i = 0; i < STATE_SIZE; i = i + 1) {
    dst[i] = state[i];
  }
  *(volatile u32 *)FRAM_FLAG = 1 - flag;
}

/* The execution loop of figure 1. */
void main(void) {
  while (1) {
    read_command(sys_cmd);
    load_state(sys_state);
    handle(sys_state, sys_cmd, sys_resp);
    store_state(sys_state);
    write_response(sys_resp);
  }
}
