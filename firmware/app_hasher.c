/* Password-hashing HSM application (the paper's figure 12).
 *
 * State  (32 bytes): the HMAC secret.
 * Command (33 bytes): cmd[0] = tag.
 *   tag 1 (Initialize): cmd[1..32] = secret.
 *   tag 2 (Hash):       cmd[1..32] = 32-byte message (fixed-size; the paper's spec
 *                       takes an arbitrary message — the fixed size is the wire-format
 *                       choice, recorded in DESIGN.md).
 * Response (33 bytes): resp[0] = tag (1 = Initialized, 2 = Hashed, 0 = invalid
 *   command), resp[1..32] = digest for Hashed.
 *
 * The digest is HMAC-BLAKE2s(secret, message); both hash invocations run over
 * fixed-size inputs, so timing is independent of the secret. Depends on hash.c.
 */

void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) {
    resp[i] = 0;
  }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    for (u32 i = 0; i < 32; i = i + 1) {
      state[i] = cmd[1 + i];
    }
    resp[0] = 1;
    return;
  }
  if (tag == 2) {
    u8 digest[32];
    hmac_blake2s(digest, state, cmd + 1, 32);
    resp[0] = 2;
    for (u32 i = 0; i < 32; i = i + 1) {
      resp[1 + i] = digest[i];
    }
    return;
  }
  /* Unknown tag: state untouched, canonical zero response. */
}
