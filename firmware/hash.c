/* SHA-256, HMAC-SHA256, BLAKE2s, and HMAC-BLAKE2s in MiniC.
 *
 * This is the firmware port of the host crypto substrate (src/crypto/), written in the
 * MiniC subset so one artifact serves both worlds: compiled natively it is
 * differentially tested against the host implementation; compiled by minicc it becomes
 * the HSM firmware whose cycle-level behaviour Knox2 checks.
 *
 * Constant-time discipline: all loops run over public lengths; there are no
 * secret-dependent branches or table lookups indexed by secret data.
 */
#include "fw.h"

/* ---------- SHA-256 (FIPS 180-4) ---------- */

const u32 SHA256_K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

u32 rotr32(u32 x, u32 n) { return (x >> n) | (x << (32 - n)); }

u32 load_be32(u8 *p) {
  return ((u32)p[0] << 24) | ((u32)p[1] << 16) | ((u32)p[2] << 8) | (u32)p[3];
}

void store_be32(u8 *p, u32 v) {
  p[0] = (u8)(v >> 24);
  p[1] = (u8)(v >> 16);
  p[2] = (u8)(v >> 8);
  p[3] = (u8)v;
}

void sha256_compress(u32 *st, u8 *block) {
  u32 w[64];
  for (u32 i = 0; i < 16; i = i + 1) {
    w[i] = load_be32(block + i * 4);
  }
  for (u32 i = 16; i < 64; i = i + 1) {
    u32 s0 = rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    u32 s1 = rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  u32 a = st[0];
  u32 b = st[1];
  u32 c = st[2];
  u32 d = st[3];
  u32 e = st[4];
  u32 f = st[5];
  u32 g = st[6];
  u32 h = st[7];
  for (u32 i = 0; i < 64; i = i + 1) {
    u32 s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
    u32 ch = (e & f) ^ (~e & g);
    u32 t1 = h + s1 + ch + SHA256_K[i] + w[i];
    u32 s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
    u32 maj = (a & b) ^ (a & c) ^ (b & c);
    u32 t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  st[0] = st[0] + a;
  st[1] = st[1] + b;
  st[2] = st[2] + c;
  st[3] = st[3] + d;
  st[4] = st[4] + e;
  st[5] = st[5] + f;
  st[6] = st[6] + g;
  st[7] = st[7] + h;
}

/* One-shot SHA-256 over msg[0..len). len is public. */
void sha256(u8 *out, u8 *msg, u32 len) {
  u32 st[8];
  u8 block[64];
  st[0] = 0x6a09e667;
  st[1] = 0xbb67ae85;
  st[2] = 0x3c6ef372;
  st[3] = 0xa54ff53a;
  st[4] = 0x510e527f;
  st[5] = 0x9b05688c;
  st[6] = 0x1f83d9ab;
  st[7] = 0x5be0cd19;
  u32 full = len / 64;
  for (u32 b = 0; b < full; b = b + 1) {
    sha256_compress(st, msg + b * 64);
  }
  u32 rem = len - full * 64;
  for (u32 i = 0; i < rem; i = i + 1) {
    block[i] = msg[full * 64 + i];
  }
  block[rem] = 0x80;
  for (u32 i = rem + 1; i < 64; i = i + 1) {
    block[i] = 0;
  }
  if (rem + 9 > 64) {
    sha256_compress(st, block);
    for (u32 i = 0; i < 64; i = i + 1) {
      block[i] = 0;
    }
  }
  /* Message length in bits, big-endian 64-bit (lengths < 2^29 bytes). */
  store_be32(block + 56, len >> 29);
  store_be32(block + 60, len << 3);
  sha256_compress(st, block);
  for (u32 i = 0; i < 8; i = i + 1) {
    store_be32(out + i * 4, st[i]);
  }
}

/* HMAC-SHA256 with a 32-byte key (the only key size the HSM apps use). */
void hmac_sha256(u8 *out, u8 *key32, u8 *msg, u32 len) {
  u8 buf[128]; /* ipad block + message (len <= 64 in our apps). */
  u8 obuf[96]; /* opad block + inner digest. */
  for (u32 i = 0; i < 32; i = i + 1) {
    buf[i] = key32[i] ^ 0x36;
  }
  for (u32 i = 32; i < 64; i = i + 1) {
    buf[i] = 0x36;
  }
  for (u32 i = 0; i < len; i = i + 1) {
    buf[64 + i] = msg[i];
  }
  u8 inner[32];
  sha256(inner, buf, 64 + len);
  for (u32 i = 0; i < 32; i = i + 1) {
    obuf[i] = key32[i] ^ 0x5c;
  }
  for (u32 i = 32; i < 64; i = i + 1) {
    obuf[i] = 0x5c;
  }
  for (u32 i = 0; i < 32; i = i + 1) {
    obuf[64 + i] = inner[i];
  }
  sha256(out, obuf, 96);
}

/* ---------- BLAKE2s (RFC 7693), 256-bit digest, unkeyed ---------- */

const u32 BLAKE2S_IV[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                           0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

const u8 BLAKE2S_SIGMA[160] = {
    0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,
    14, 10, 4,  8,  9,  15, 13, 6,  1,  12, 0,  2,  11, 7,  5,  3,
    11, 8,  12, 0,  5,  2,  15, 13, 10, 14, 3,  6,  7,  1,  9,  4,
    7,  9,  3,  1,  13, 12, 11, 14, 2,  6,  5,  10, 4,  0,  15, 8,
    9,  0,  5,  7,  2,  4,  10, 15, 14, 1,  11, 12, 6,  8,  3,  13,
    2,  12, 6,  10, 0,  11, 8,  3,  4,  13, 7,  5,  15, 14, 1,  9,
    12, 5,  1,  15, 14, 13, 4,  10, 0,  7,  6,  3,  9,  2,  8,  11,
    13, 11, 7,  14, 12, 1,  3,  9,  5,  0,  15, 4,  8,  6,  2,  10,
    6,  15, 14, 9,  11, 3,  0,  8,  12, 2,  13, 7,  1,  4,  10, 5,
    10, 2,  8,  4,  7,  6,  1,  5,  15, 11, 9,  14, 3,  12, 13, 0};

u32 load_le32_fw(u8 *p) {
  return (u32)p[0] | ((u32)p[1] << 8) | ((u32)p[2] << 16) | ((u32)p[3] << 24);
}

void store_le32_fw(u8 *p, u32 v) {
  p[0] = (u8)v;
  p[1] = (u8)(v >> 8);
  p[2] = (u8)(v >> 16);
  p[3] = (u8)(v >> 24);
}

void blake2s_g(u32 *v, u32 a, u32 b, u32 c, u32 d, u32 x, u32 y) {
  v[a] = v[a] + v[b] + x;
  v[d] = rotr32(v[d] ^ v[a], 16);
  v[c] = v[c] + v[d];
  v[b] = rotr32(v[b] ^ v[c], 12);
  v[a] = v[a] + v[b] + y;
  v[d] = rotr32(v[d] ^ v[a], 8);
  v[c] = v[c] + v[d];
  v[b] = rotr32(v[b] ^ v[c], 7);
}

void blake2s_compress(u32 *h, u8 *block, u32 counter, u32 is_last) {
  u32 m[16];
  u32 v[16];
  for (u32 i = 0; i < 16; i = i + 1) {
    m[i] = load_le32_fw(block + i * 4);
  }
  for (u32 i = 0; i < 8; i = i + 1) {
    v[i] = h[i];
    v[i + 8] = BLAKE2S_IV[i];
  }
  v[12] = v[12] ^ counter;
  /* High counter word stays zero for our message sizes. */
  if (is_last) {
    v[14] = ~v[14];
  }
  for (u32 r = 0; r < 10; r = r + 1) {
    u8 *s = (u8 *)BLAKE2S_SIGMA + r * 16;
    blake2s_g(v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
    blake2s_g(v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
    blake2s_g(v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
    blake2s_g(v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
    blake2s_g(v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
    blake2s_g(v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
    blake2s_g(v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
    blake2s_g(v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
  }
  for (u32 i = 0; i < 8; i = i + 1) {
    h[i] = h[i] ^ v[i] ^ v[i + 8];
  }
}

/* One-shot BLAKE2s-256 over msg[0..len), len public and at least 1 block's worth of
 * meaningfulness (len == 0 also works: a single zero block with the last flag). */
void blake2s(u8 *out, u8 *msg, u32 len) {
  u32 h[8];
  u8 block[64];
  for (u32 i = 0; i < 8; i = i + 1) {
    h[i] = BLAKE2S_IV[i];
  }
  /* Parameter block word: 0x01010000 ^ (digest length 32). */
  h[0] = h[0] ^ (0x01010000 ^ 32);
  u32 pos = 0;
  /* All blocks except the last. */
  while (len - pos > 64) {
    blake2s_compress(h, msg + pos, pos + 64, 0);
    pos = pos + 64;
  }
  u32 rem = len - pos;
  for (u32 i = 0; i < rem; i = i + 1) {
    block[i] = msg[pos + i];
  }
  for (u32 i = rem; i < 64; i = i + 1) {
    block[i] = 0;
  }
  blake2s_compress(h, block, len, 1);
  for (u32 i = 0; i < 8; i = i + 1) {
    store_le32_fw(out + i * 4, h[i]);
  }
}

/* HMAC-BLAKE2s with a 32-byte key (figure 12's `hmac Blake2S`). */
void hmac_blake2s(u8 *out, u8 *key32, u8 *msg, u32 len) {
  u8 buf[128];
  u8 obuf[96];
  for (u32 i = 0; i < 32; i = i + 1) {
    buf[i] = key32[i] ^ 0x36;
  }
  for (u32 i = 32; i < 64; i = i + 1) {
    buf[i] = 0x36;
  }
  for (u32 i = 0; i < len; i = i + 1) {
    buf[64 + i] = msg[i];
  }
  u8 inner[32];
  blake2s(inner, buf, 64 + len);
  for (u32 i = 0; i < 32; i = i + 1) {
    obuf[i] = key32[i] ^ 0x5c;
  }
  for (u32 i = 32; i < 64; i = i + 1) {
    obuf[i] = 0x5c;
  }
  for (u32 i = 0; i < 32; i = i + 1) {
    obuf[64 + i] = inner[i];
  }
  blake2s(out, obuf, 96);
}
