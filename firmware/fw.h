/* Host compatibility header for dual-compiled MiniC application sources.
 *
 * MiniC skips '#' lines, so firmware sources can `#include "fw.h"`; when the same
 * source is compiled natively (for differential testing against the host crypto
 * library and for Starling checks), this header supplies the MiniC builtin types and
 * intrinsics. Keeping one artifact for both worlds is the point: the bytes-level
 * semantics checked on the host are exactly what the SoC executes.
 */
#ifndef PARFAIT_FIRMWARE_FW_H_
#define PARFAIT_FIRMWARE_FW_H_

typedef unsigned char u8;
typedef unsigned int u32;

/* MiniC `secret` storage qualifier (taint-seed annotation for the static leakage
 * lint); a no-op for host compilers. */
#define secret

static inline u32 __mulhu(u32 a, u32 b) {
  return (u32)(((unsigned long long)a * (unsigned long long)b) >> 32);
}

#endif /* PARFAIT_FIRMWARE_FW_H_ */
