/* P-256 ECDSA signing in MiniC — the firmware port of src/crypto/{bignum,p256,ecdsa}.
 *
 * Mirrors the host implementation operation-for-operation: 8x32-bit limbs, CIOS
 * Montgomery multiplication (via the __mulhu intrinsic -> RV32M mulhu), Jacobian
 * double-and-add-always ladder with constant-time selects, Fermat inversion with
 * public exponents, and the section 7.1 compute-unconditionally-then-mask error
 * handling. Branches occur only on public values (loop counters, public exponent
 * bits, command tags).
 *
 * Representation: a field/scalar element is u32[8], little-endian limbs. A Jacobian
 * point is u32[24] = X || Y || Z in the Montgomery domain; infinity has Z == 0.
 *
 * Depends on hash.c (for nothing here, but the app combines both).
 */
#include "fw.h"

/* The scalar-multiplication ladder width. 256 for correct operation; the development
 * cycle described in the paper's section 8.1 reduces loop bounds like this one to
 * localize timing bugs faster (functionality breaks, timing structure survives). The
 * devcycle benchmark rewrites this constant textually, mirroring the paper's manual
 * edit. */
enum { LADDER_BITS = 256 };

/* ---------- Curve constants (little-endian limbs) ---------- */

const u32 P256_P[8] = {0xffffffff, 0xffffffff, 0xffffffff, 0x00000000,
                       0x00000000, 0x00000000, 0x00000001, 0xffffffff};
const u32 P256_N[8] = {0xfc632551, 0xf3b9cac2, 0xa7179e84, 0xbce6faad,
                       0xffffffff, 0xffffffff, 0x00000000, 0xffffffff};
const u32 P256_GX[8] = {0xd898c296, 0xf4a13945, 0x2deb33a0, 0x77037d81,
                        0x63a440f2, 0xf8bce6e5, 0xe12c4247, 0x6b17d1f2};
const u32 P256_GY[8] = {0x37bf51f5, 0xcbb64068, 0x6b315ece, 0x2bce3357,
                        0x7c0f9e16, 0x8ee7eb4a, 0xfe1a7f9b, 0x4fe342e2};

/* Montgomery contexts, computed at each handle() invocation (cheap, and keeps timing
 * identical between the first and the Nth command). */
u32 p256_pr[8];   /* R mod p (Montgomery 1). */
u32 p256_prr[8];  /* R^2 mod p. */
u32 p256_pn0;     /* -p^-1 mod 2^32. */
u32 p256_nr[8];
u32 p256_nrr[8];
u32 p256_nn0;
u32 p256_g[24];   /* Generator in Jacobian/Montgomery form. */

/* ---------- Bignum primitives ---------- */

u32 mask_nz(u32 x) { return 0 - ((x | (0 - x)) >> 31); }

void bn_zero(u32 *r) {
  for (u32 i = 0; i < 8; i = i + 1) {
    r[i] = 0;
  }
}

void bn_copy(u32 *r, u32 *a) {
  for (u32 i = 0; i < 8; i = i + 1) {
    r[i] = a[i];
  }
}

u32 bn_add(u32 *r, u32 *a, u32 *b) {
  u32 carry = 0;
  for (u32 i = 0; i < 8; i = i + 1) {
    u32 s = a[i] + b[i];
    u32 c1 = s < a[i];
    u32 s2 = s + carry;
    u32 c2 = s2 < s;
    r[i] = s2;
    carry = c1 + c2;
  }
  return carry;
}

u32 bn_sub(u32 *r, u32 *a, u32 *b) {
  u32 borrow = 0;
  for (u32 i = 0; i < 8; i = i + 1) {
    u32 d = a[i] - b[i];
    u32 b1 = a[i] < b[i];
    u32 d2 = d - borrow;
    u32 b2 = d < borrow;
    r[i] = d2;
    borrow = b1 + b2;
  }
  return borrow;
}

/* All-ones iff a >= b. */
u32 bn_ge_mask(u32 *a, u32 *b) {
  u32 scratch[8];
  u32 borrow = bn_sub(scratch, a, b);
  return borrow - 1;
}

/* All-ones iff a == 0. */
u32 bn_iszero_mask(u32 *a) {
  u32 acc = 0;
  for (u32 i = 0; i < 8; i = i + 1) {
    acc = acc | a[i];
  }
  return ~mask_nz(acc);
}

void bn_cmov(u32 *r, u32 *a, u32 mask) {
  for (u32 i = 0; i < 8; i = i + 1) {
    r[i] = (a[i] & mask) | (r[i] & ~mask);
  }
}

/* Big-endian 32-byte conversions. */
void bn_from_bytes(u32 *r, u8 *p) {
  for (u32 i = 0; i < 8; i = i + 1) {
    u8 *q = p + (7 - i) * 4;
    r[i] = ((u32)q[0] << 24) | ((u32)q[1] << 16) | ((u32)q[2] << 8) | (u32)q[3];
  }
}

void bn_to_bytes(u8 *p, u32 *a) {
  for (u32 i = 0; i < 8; i = i + 1) {
    u8 *q = p + (7 - i) * 4;
    u32 v = a[i];
    q[0] = (u8)(v >> 24);
    q[1] = (u8)(v >> 16);
    q[2] = (u8)(v >> 8);
    q[3] = (u8)v;
  }
}

/* ---------- Montgomery arithmetic ---------- */

u32 mont_n0inv(u32 m0) {
  u32 inv = m0;
  for (u32 i = 0; i < 4; i = i + 1) {
    inv = inv * (2 - m0 * inv);
  }
  return 0 - inv;
}

/* One shift-and-reduce doubling step: x = 2x mod m (x < m on entry). */
void mont_double_step(u32 *x, u32 *mod) {
  u32 reduced[8];
  u32 carry = bn_add(x, x, x);
  u32 borrow = bn_sub(reduced, x, mod);
  u32 keep = (0 - carry) | (borrow - 1);
  bn_cmov(x, reduced, keep);
}

/* r1 = R mod m, rr = R^2 mod m. */
void mont_init(u32 *r1, u32 *rr, u32 *mod) {
  bn_zero(r1);
  r1[0] = 1;
  for (u32 i = 0; i < 256; i = i + 1) {
    mont_double_step(r1, mod);
  }
  bn_copy(rr, r1);
  for (u32 i = 0; i < 256; i = i + 1) {
    mont_double_step(rr, mod);
  }
}

/* out = a*b*R^-1 mod m (CIOS). Safe when out aliases a and/or b. */
void mont_mul(u32 *out, u32 *a, u32 *b, u32 *mod, u32 n0inv) {
  u32 t[10];
  for (u32 i = 0; i < 10; i = i + 1) {
    t[i] = 0;
  }
  for (u32 i = 0; i < 8; i = i + 1) {
    u32 bi = b[i];
    u32 carry = 0;
    for (u32 j = 0; j < 8; j = j + 1) {
      u32 lo = a[j] * bi;
      u32 hi = __mulhu(a[j], bi);
      lo = lo + t[j];
      hi = hi + (lo < t[j]);
      lo = lo + carry;
      hi = hi + (lo < carry);
      t[j] = lo;
      carry = hi;
    }
    u32 s = t[8] + carry;
    t[9] = s < carry;
    t[8] = s;
    u32 m = t[0] * n0inv;
    {
      u32 lo = m * mod[0];
      u32 hi = __mulhu(m, mod[0]);
      lo = lo + t[0];
      hi = hi + (lo < t[0]);
      carry = hi;
    }
    for (u32 j = 1; j < 8; j = j + 1) {
      u32 lo = m * mod[j];
      u32 hi = __mulhu(m, mod[j]);
      lo = lo + t[j];
      hi = hi + (lo < t[j]);
      lo = lo + carry;
      hi = hi + (lo < carry);
      t[j - 1] = lo;
      carry = hi;
    }
    u32 w = t[8] + carry;
    t[7] = w;
    t[8] = t[9] + (w < carry);
    t[9] = 0;
  }
  u32 reduced[8];
  u32 borrow = bn_sub(reduced, t, mod);
  u32 keep = mask_nz(t[8]) | (borrow - 1);
  for (u32 i = 0; i < 8; i = i + 1) {
    out[i] = (reduced[i] & keep) | (t[i] & ~keep);
  }
}

/* Modular add/sub (operands < m). */
void mod_add(u32 *r, u32 *a, u32 *b, u32 *mod) {
  u32 reduced[8];
  u32 carry = bn_add(r, a, b);
  u32 borrow = bn_sub(reduced, r, mod);
  u32 keep = (0 - carry) | (borrow - 1);
  bn_cmov(r, reduced, keep);
}

void mod_sub(u32 *r, u32 *a, u32 *b, u32 *mod) {
  u32 fixed[8];
  u32 borrow = bn_sub(r, a, b);
  bn_add(fixed, r, mod);
  bn_cmov(r, fixed, 0 - borrow);
}

/* Reduce a full-range value into [0, m) with two conditional subtracts (valid for the
 * P-256 moduli, which exceed 2^254). */
void mod_reduce(u32 *r, u32 *a, u32 *mod) {
  u32 reduced[8];
  bn_copy(r, a);
  for (u32 pass = 0; pass < 2; pass = pass + 1) {
    u32 borrow = bn_sub(reduced, r, mod);
    bn_cmov(r, reduced, borrow - 1);
  }
}

/* out = base^exp mod m (Montgomery domain; exponent is PUBLIC). */
void mont_pow(u32 *out, u32 *base, u32 *exp, u32 *mod, u32 n0inv, u32 *r1) {
  u32 acc[8];
  bn_copy(acc, r1);
  for (u32 i = 0; i < 256; i = i + 1) {
    u32 bi = 255 - i;
    mont_mul(acc, acc, acc, mod, n0inv);
    u32 bit = (exp[bi >> 5] >> (bi & 31)) & 1;
    if (bit) {
      mont_mul(acc, acc, base, mod, n0inv);
    }
  }
  bn_copy(out, acc);
}

/* ---------- Jacobian curve arithmetic (Montgomery domain mod p) ---------- */

void pt_copy(u32 *r, u32 *a) {
  for (u32 i = 0; i < 24; i = i + 1) {
    r[i] = a[i];
  }
}

void pt_cmov(u32 *r, u32 *a, u32 mask) {
  for (u32 i = 0; i < 24; i = i + 1) {
    r[i] = (a[i] & mask) | (r[i] & ~mask);
  }
}

void pt_infinity(u32 *r) {
  bn_copy(r, p256_pr);
  bn_copy(r + 8, p256_pr);
  bn_zero(r + 16);
}

/* out = 2p ("dbl-2001-b", a = -3). Safe when out aliases p. */
void jac_double(u32 *out, u32 *p) {
  u32 delta[8];
  u32 gamma[8];
  u32 beta[8];
  u32 alpha[8];
  u32 t0[8];
  u32 t1[8];
  u32 t2[8];
  u32 x3[8];
  u32 y3[8];
  u32 z3[8];
  mont_mul(delta, p + 16, p + 16, (u32 *)P256_P, p256_pn0);
  mont_mul(gamma, p + 8, p + 8, (u32 *)P256_P, p256_pn0);
  mont_mul(beta, p, gamma, (u32 *)P256_P, p256_pn0);
  mod_sub(t0, p, delta, (u32 *)P256_P);
  mod_add(t1, p, delta, (u32 *)P256_P);
  mont_mul(t2, t0, t1, (u32 *)P256_P, p256_pn0);
  mod_add(alpha, t2, t2, (u32 *)P256_P);
  mod_add(alpha, alpha, t2, (u32 *)P256_P);
  u32 beta4[8];
  u32 beta8[8];
  mod_add(beta4, beta, beta, (u32 *)P256_P);
  mod_add(beta4, beta4, beta4, (u32 *)P256_P);
  mod_add(beta8, beta4, beta4, (u32 *)P256_P);
  mont_mul(x3, alpha, alpha, (u32 *)P256_P, p256_pn0);
  mod_sub(x3, x3, beta8, (u32 *)P256_P);
  u32 yz[8];
  mod_add(yz, p + 8, p + 16, (u32 *)P256_P);
  mont_mul(z3, yz, yz, (u32 *)P256_P, p256_pn0);
  mod_sub(z3, z3, gamma, (u32 *)P256_P);
  mod_sub(z3, z3, delta, (u32 *)P256_P);
  u32 g2[8];
  mont_mul(g2, gamma, gamma, (u32 *)P256_P, p256_pn0);
  mod_add(g2, g2, g2, (u32 *)P256_P);
  mod_add(g2, g2, g2, (u32 *)P256_P);
  mod_add(g2, g2, g2, (u32 *)P256_P);
  mod_sub(y3, beta4, x3, (u32 *)P256_P);
  mont_mul(y3, alpha, y3, (u32 *)P256_P, p256_pn0);
  mod_sub(y3, y3, g2, (u32 *)P256_P);
  bn_copy(out, x3);
  bn_copy(out + 8, y3);
  bn_copy(out + 16, z3);
}

/* out = p + q, complete via constant-time selects. Safe when out aliases p or q. */
void jac_add(u32 *out, u32 *p, u32 *q) {
  u32 z1z1[8];
  u32 z2z2[8];
  u32 u1[8];
  u32 u2[8];
  u32 s1[8];
  u32 s2[8];
  u32 h[8];
  u32 rr[8];
  u32 t[8];
  u32 x3[8];
  u32 y3[8];
  u32 z3[8];
  mont_mul(z1z1, p + 16, p + 16, (u32 *)P256_P, p256_pn0);
  mont_mul(z2z2, q + 16, q + 16, (u32 *)P256_P, p256_pn0);
  mont_mul(u1, p, z2z2, (u32 *)P256_P, p256_pn0);
  mont_mul(u2, q, z1z1, (u32 *)P256_P, p256_pn0);
  mont_mul(t, z2z2, q + 16, (u32 *)P256_P, p256_pn0);
  mont_mul(s1, p + 8, t, (u32 *)P256_P, p256_pn0);
  mont_mul(t, z1z1, p + 16, (u32 *)P256_P, p256_pn0);
  mont_mul(s2, q + 8, t, (u32 *)P256_P, p256_pn0);
  mod_sub(h, u2, u1, (u32 *)P256_P);
  mod_sub(rr, s2, s1, (u32 *)P256_P);
  u32 h2[8];
  u32 h3[8];
  u32 u1h2[8];
  mont_mul(h2, h, h, (u32 *)P256_P, p256_pn0);
  mont_mul(h3, h2, h, (u32 *)P256_P, p256_pn0);
  mont_mul(u1h2, u1, h2, (u32 *)P256_P, p256_pn0);
  mont_mul(x3, rr, rr, (u32 *)P256_P, p256_pn0);
  mod_sub(x3, x3, h3, (u32 *)P256_P);
  mod_sub(x3, x3, u1h2, (u32 *)P256_P);
  mod_sub(x3, x3, u1h2, (u32 *)P256_P);
  mod_sub(y3, u1h2, x3, (u32 *)P256_P);
  mont_mul(y3, rr, y3, (u32 *)P256_P, p256_pn0);
  mont_mul(t, s1, h3, (u32 *)P256_P, p256_pn0);
  mod_sub(y3, y3, t, (u32 *)P256_P);
  mont_mul(z3, p + 16, q + 16, (u32 *)P256_P, p256_pn0);
  mont_mul(z3, z3, h, (u32 *)P256_P, p256_pn0);

  u32 p_inf = bn_iszero_mask(p + 16);
  u32 q_inf = bn_iszero_mask(q + 16);
  u32 h_zero = bn_iszero_mask(h);
  u32 r_zero = bn_iszero_mask(rr);
  u32 finite = ~p_inf & ~q_inf;

  u32 doubled[24];
  jac_double(doubled, p);
  u32 inf[24];
  pt_infinity(inf);

  u32 result[24];
  bn_copy(result, x3);
  bn_copy(result + 8, y3);
  bn_copy(result + 16, z3);
  pt_cmov(result, doubled, finite & h_zero & r_zero);
  pt_cmov(result, inf, finite & h_zero & ~r_zero);
  pt_cmov(result, p, q_inf);
  pt_cmov(result, q, p_inf);
  pt_copy(out, result);
}

/* out = k * p, constant-time 256-step ladder. k is SECRET. */
void pt_scalar_mul(u32 *out, u32 *k, u32 *p) {
  u32 acc[24];
  u32 tmp[24];
  pt_infinity(acc);
  for (u32 i = 0; i < LADDER_BITS; i = i + 1) {
    u32 bi = 255 - i;
    jac_double(acc, acc);
    jac_add(tmp, acc, p);
    u32 bit = (k[bi >> 5] >> (bi & 31)) & 1;
    pt_cmov(acc, tmp, 0 - bit);
  }
  pt_copy(out, acc);
}

/* Affine x-coordinate (out of the Montgomery domain). Returns all-ones if finite. */
u32 pt_affine_x(u32 *x_out, u32 *p) {
  u32 finite = ~bn_iszero_mask(p + 16);
  u32 exp[8];
  u32 two[8];
  bn_zero(two);
  two[0] = 2;
  bn_sub(exp, (u32 *)P256_P, two);
  u32 zinv[8];
  mont_pow(zinv, p + 16, exp, (u32 *)P256_P, p256_pn0, p256_pr);
  u32 zinv2[8];
  mont_mul(zinv2, zinv, zinv, (u32 *)P256_P, p256_pn0);
  u32 xm[8];
  mont_mul(xm, p, zinv2, (u32 *)P256_P, p256_pn0);
  u32 one[8];
  bn_zero(one);
  one[0] = 1;
  mont_mul(x_out, xm, one, (u32 *)P256_P, p256_pn0);
  for (u32 i = 0; i < 8; i = i + 1) {
    x_out[i] = x_out[i] & finite;
  }
  return finite;
}

/* ---------- ECDSA ---------- */

void p256_init(void) {
  p256_pn0 = mont_n0inv(P256_P[0]);
  p256_nn0 = mont_n0inv(P256_N[0]);
  mont_init(p256_pr, p256_prr, (u32 *)P256_P);
  mont_init(p256_nr, p256_nrr, (u32 *)P256_N);
  /* Generator into the Montgomery domain. */
  mont_mul(p256_g, (u32 *)P256_GX, p256_prr, (u32 *)P256_P, p256_pn0);
  mont_mul(p256_g + 8, (u32 *)P256_GY, p256_prr, (u32 *)P256_P, p256_pn0);
  bn_copy(p256_g + 16, p256_pr);
}

/* All-ones iff 1 <= a < n. */
u32 scalar_in_range(u32 *a) {
  return ~bn_iszero_mask(a) & ~bn_ge_mask(a, (u32 *)P256_N);
}

/* Signs a 32-byte message with a 32-byte key and 32-byte nonce (all big-endian).
 * Writes r||s (64 bytes) to sig, masked to zero on failure. Returns all-ones on
 * success, 0 on failure. Constant time with respect to all inputs. */
u32 ecdsa_sign_fw(u8 *sig, u8 *msg32, u8 *key32, u8 *nonce32) {
  p256_init();
  u32 d[8];
  u32 k[8];
  u32 z[8];
  u32 zr[8];
  bn_from_bytes(d, key32);
  bn_from_bytes(k, nonce32);
  bn_from_bytes(zr, msg32);
  mod_reduce(z, zr, (u32 *)P256_N);

  u32 ok = scalar_in_range(d) & scalar_in_range(k);

  /* Substitute 1 for out-of-range secrets; the result is masked away. */
  u32 one[8];
  bn_zero(one);
  one[0] = 1;
  u32 d_eff[8];
  u32 k_eff[8];
  bn_copy(d_eff, d);
  bn_copy(k_eff, k);
  bn_cmov(d_eff, one, ~ok);
  bn_cmov(k_eff, one, ~ok);

  u32 big_r[24];
  pt_scalar_mul(big_r, k_eff, p256_g);
  u32 rx[8];
  pt_affine_x(rx, big_r);
  u32 r[8];
  mod_reduce(r, rx, (u32 *)P256_N);
  ok = ok & ~bn_iszero_mask(r);

  /* s = k^-1 (z + r d) mod n in the Montgomery domain of n. */
  u32 km[8];
  mont_mul(km, k_eff, p256_nrr, (u32 *)P256_N, p256_nn0);
  u32 nexp[8];
  u32 two[8];
  bn_zero(two);
  two[0] = 2;
  bn_sub(nexp, (u32 *)P256_N, two);
  u32 kinv[8];
  mont_pow(kinv, km, nexp, (u32 *)P256_N, p256_nn0, p256_nr);
  u32 rm[8];
  u32 dm[8];
  u32 zm[8];
  mont_mul(rm, r, p256_nrr, (u32 *)P256_N, p256_nn0);
  mont_mul(dm, d_eff, p256_nrr, (u32 *)P256_N, p256_nn0);
  mont_mul(zm, z, p256_nrr, (u32 *)P256_N, p256_nn0);
  u32 sm[8];
  mont_mul(sm, rm, dm, (u32 *)P256_N, p256_nn0);
  mod_add(sm, sm, zm, (u32 *)P256_N);
  mont_mul(sm, kinv, sm, (u32 *)P256_N, p256_nn0);
  u32 s[8];
  mont_mul(s, sm, one, (u32 *)P256_N, p256_nn0);
  ok = ok & ~bn_iszero_mask(s);

  bn_to_bytes(sig, r);
  bn_to_bytes(sig + 32, s);
  u8 m = (u8)ok;
  for (u32 i = 0; i < 64; i = i + 1) {
    sig[i] = sig[i] & m;
  }
  return ok;
}
