# Platform boot code (the startup assembly of the paper's system software, section 2).
#
# Sets up the C execution environment: stack pointer, .data copy from ROM, .bss zero,
# then enters main(). main() never returns; if it does, halt the core.
.text
.globl _start
.type _start, @function
_start:
    la sp, STACK_TOP

    # Copy .data initializers from ROM (load address) to RAM.
    la t0, __data_lma
    la t1, __data_start
    la t2, __data_size
    add t2, t1, t2
data_copy_loop:
    bgeu t1, t2, data_copy_done
    lw t3, 0(t0)
    sw t3, 0(t1)
    addi t0, t0, 4
    addi t1, t1, 4
    j data_copy_loop
data_copy_done:

    # Zero .bss.
    la t0, __bss_start
    la t1, __bss_size
    add t1, t0, t1
bss_zero_loop:
    bgeu t0, t1, bss_zero_done
    sw zero, 0(t0)
    addi t0, t0, 4
    j bss_zero_loop
bss_zero_done:

    call main
    ebreak
