// Table 3 reproduction: software verification effort — per-app proof-artifact size and
// the wall-clock time for machine verification of the lockstep property (Starling).
// The paper reports 500/200 proof LoC and sub-minute verification; here "proof" is the
// Starling harness plus the app's spec/codec artifact, and verification is the
// property-check run.
//
// --threads=N (0 = all hardware threads) shards the Starling trials; when N != 1 each
// app is verified at 1 thread and at N and both times are reported, with a check that
// the reports — including their telemetry snapshots — are identical (the seed-splitting
// determinism guarantee). --trace=<path> (or PARFAIT_TRACE) captures a Chrome trace;
// --json=<path> overrides the BENCH_telemetry.json location.
//
// --shards=K/M switches to the multi-process work-unit mode (src/support/shard.h):
// the suite decomposes into app x trial-kind units (valid, invalid, sequence per
// app) with deterministic global ordinals, runs only the units with
// ordinal % M == K-1, and writes their records to --shard-out (default
// BENCH_shard_K_of_M.json). `parfait-prof merge` combines all M shard files into a
// report byte-identical to a --shards=1/1 run's BENCH_table3_report.json. Each unit
// seeds its trials from SplitSeed(1234, ordinal), so records are a function of the
// unit alone — any shard count, thread count, or process layout folds identically.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/starling/starling.h"
#include "src/support/loc.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"
#include "src/support/shard.h"

using namespace parfait;

namespace {

// Verifies one app at 1 thread and (when requested) at `threads`; prints one table
// row per thread count and returns false on a check failure or a determinism
// divergence between the two runs. The serial run's phase timing, telemetry snapshot,
// and any counterexample feed the bench-level telemetry report (serial only, so the
// report is identical at every --threads value).
bool RunApp(const char* label, const hsm::App& app, size_t proof_loc,
            starling::StarlingOptions options, int threads,
            bench::TelemetryReport* report) {
  options.num_threads = 1;
  bench::Stopwatch serial_timer;
  auto serial = starling::CheckApp(app, options);
  double serial_secs = serial_timer.Seconds();
  std::printf("%-18s %-22zu %-18d %.2f s @1t  [%s]\n", label, proof_loc, serial.checks_run,
              serial_secs, serial.ok ? "PASS" : serial.failure.c_str());
  report->AddPhase(std::string(label) + " @1t", serial_secs);
  report->Merge(serial.telemetry);
  if (serial.evidence.has_value()) {
    report->AddEvidence(*serial.evidence);
  }
  if (threads == 1) {
    return serial.ok;
  }

  options.num_threads = threads;
  bench::Stopwatch parallel_timer;
  auto parallel = starling::CheckApp(app, options);
  double parallel_secs = parallel_timer.Seconds();
  bool identical = parallel.ok == serial.ok && parallel.failure == serial.failure &&
                   parallel.checks_run == serial.checks_run &&
                   parallel.telemetry == serial.telemetry;
  std::printf("%-18s %-22s %-18d %.2f s @%dt  [%s] %.2fx%s\n", "", "", parallel.checks_run,
              parallel_secs, threads, parallel.ok ? "PASS" : parallel.failure.c_str(),
              parallel_secs > 0 ? serial_secs / parallel_secs : 0.0,
              identical ? "" : "  DIVERGED (determinism bug!)");
  report->AddPhase(std::string(label) + " @" + std::to_string(threads) + "t",
                   parallel_secs);
  return parallel.ok && identical;
}

// The sharded unit-record path: one unit per app x trial kind. A unit reruns
// CheckApp restricted to its kind with its own SplitSeed stream, so the record —
// pass/fail, checks_run (stored in the record's cycles field: Starling's work
// metric), telemetry — is deterministic in the ordinal alone.
int RunSharded(int argc, char** argv, const shard::ShardSpec& spec) {
  int threads = ResolveNumThreads(bench::ThreadsFlag(argc, argv));
  bench::TelemetryReport report("table3_software_verification", threads);

  struct AppRow {
    const char* label;
    const hsm::App* app;
    starling::StarlingOptions options;
  };
  starling::StarlingOptions ecdsa_options;
  ecdsa_options.valid_trials = 12;
  ecdsa_options.invalid_trials = 32;
  ecdsa_options.sequence_trials = 2;
  ecdsa_options.sequence_length = 4;
  const AppRow rows[] = {
      {"ECDSA signer", &hsm::EcdsaApp(), ecdsa_options},
      {"Password hasher", &hsm::HasherApp(), {}},
  };
  const char* kinds[] = {"valid", "invalid", "sequence"};

  bool ok = true;
  std::vector<shard::UnitRecord> records;
  uint64_t ordinal = 0;
  for (uint32_t r = 0; r < 2; r++) {
    for (int kind = 0; kind < 3; kind++) {
      uint64_t unit_ordinal = ordinal++;
      if (!spec.Owns(unit_ordinal)) {
        continue;
      }
      starling::StarlingOptions options = rows[r].options;
      options.num_threads = threads;
      options.seed = SplitSeed(options.seed, unit_ordinal);
      if (kind != 0) {
        options.valid_trials = 0;
      }
      if (kind != 1) {
        options.invalid_trials = 0;
      }
      if (kind != 2) {
        options.sequence_trials = 0;
      }
      auto result = starling::CheckApp(*rows[r].app, options);
      std::printf("unit %llu: %-18s %-9s %5d checks  [%s]\n",
                  static_cast<unsigned long long>(unit_ordinal), rows[r].label,
                  kinds[kind], result.checks_run,
                  result.ok ? "PASS" : result.failure.c_str());
      ok = ok && result.ok;
      report.Merge(result.telemetry);
      if (result.evidence.has_value()) {
        report.AddEvidence(*result.evidence);
      }
      shard::UnitRecord record;
      record.ordinal = unit_ordinal;
      record.row = r;
      record.row_label = rows[r].label;
      record.kind = kinds[kind];
      record.label = kinds[kind];
      record.ok = result.ok;
      record.divergence = result.failure;
      record.cycles = static_cast<uint64_t>(result.checks_run);
      record.telemetry = result.telemetry;
      records.push_back(std::move(record));
    }
  }

  std::string default_out = "BENCH_shard_" + std::to_string(spec.index) + "_of_" +
                            std::to_string(spec.count) + ".json";
  std::string out_path = bench::FlagStr(argc, argv, "--shard-out", default_out.c_str());
  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::string json = shard::ShardFileJson("table3_software_verification", spec,
                                            report.MetaJson(), records);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("Wrote %s (%zu of %llu units)\n", out_path.c_str(), records.size(),
                static_cast<unsigned long long>(ordinal));
  }
  if (!spec.active()) {
    const char* report_path =
        bench::FlagStr(argc, argv, "--report-out", "BENCH_table3_report.json");
    if (FILE* out = std::fopen(report_path, "w")) {
      std::string json = shard::MergedReportJson("table3_software_verification",
                                                 shard::FoldRows(records));
      std::fwrite(json.data(), 1, json.size(), out);
      std::fclose(out);
      std::printf("Wrote %s\n", report_path);
    }
  }
  report.Write(bench::FlagStr(argc, argv, "--json", "BENCH_telemetry.json"));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 3: software verification effort (Starling)");

  if (const char* shards = bench::FlagStr(argc, argv, "--shards", nullptr)) {
    std::string error;
    auto spec = shard::ParseShardSpec(shards, &error);
    if (!spec.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    return RunSharded(argc, argv, *spec);
  }

  std::string base = std::string(PARFAIT_SOURCE_DIR) + "/";
  size_t harness_loc = CountLoc(base + "src/starling/starling.cc") +
                       CountLoc(base + "src/starling/starling.h");
  size_t ecdsa_proof = CountLoc(base + "src/hsm/ecdsa_app.cc");
  size_t hasher_proof = CountLoc(base + "src/hsm/hasher_app.cc");

  std::string trace = bench::SetupTrace(argc, argv);
  bench::SetupProfile(argc, argv);
  int threads = ResolveNumThreads(bench::ThreadsFlag(argc, argv));
  bench::TelemetryReport report("table3_software_verification", threads);
  std::printf("%-18s %-22s %-18s %s\n", "App", "Proof artifact (LoC)", "Checks run",
              "Verification time");

  bool ok = true;
  {
    starling::StarlingOptions options;
    options.valid_trials = 12;
    options.invalid_trials = 32;
    options.sequence_trials = 2;
    options.sequence_length = 4;
    ok = RunApp("ECDSA signer", hsm::EcdsaApp(), ecdsa_proof, options, threads, &report) &&
         ok;
  }
  ok = RunApp("Password hasher", hsm::HasherApp(), hasher_proof, {}, threads, &report) && ok;
  std::printf("Shared Starling framework: %zu LoC\n", harness_loc);
  bench::PaperNote(
      "ECDSA 500 proof LoC; hasher 200 proof LoC, 2 developer-hours; machine "
      "verification < 1 minute — shape: hasher artifact smaller than ECDSA, both verify "
      "in well under a minute");
  report.Write(bench::FlagStr(argc, argv, "--json", "BENCH_telemetry.json"));
  bench::FinishTrace(trace);
  return ok ? 0 : 1;
}
