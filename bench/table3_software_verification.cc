// Table 3 reproduction: software verification effort — per-app proof-artifact size and
// the wall-clock time for machine verification of the lockstep property (Starling).
// The paper reports 500/200 proof LoC and sub-minute verification; here "proof" is the
// Starling harness plus the app's spec/codec artifact, and verification is the
// property-check run.
//
// --threads=N (0 = all hardware threads) shards the Starling trials; when N != 1 each
// app is verified at 1 thread and at N and both times are reported, with a check that
// the reports — including their telemetry snapshots — are identical (the seed-splitting
// determinism guarantee). --trace=<path> (or PARFAIT_TRACE) captures a Chrome trace;
// --json=<path> overrides the BENCH_telemetry.json location.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/starling/starling.h"
#include "src/support/loc.h"
#include "src/support/parallel.h"

using namespace parfait;

namespace {

// Verifies one app at 1 thread and (when requested) at `threads`; prints one table
// row per thread count and returns false on a check failure or a determinism
// divergence between the two runs. The serial run's phase timing, telemetry snapshot,
// and any counterexample feed the bench-level telemetry report (serial only, so the
// report is identical at every --threads value).
bool RunApp(const char* label, const hsm::App& app, size_t proof_loc,
            starling::StarlingOptions options, int threads,
            bench::TelemetryReport* report) {
  options.num_threads = 1;
  bench::Stopwatch serial_timer;
  auto serial = starling::CheckApp(app, options);
  double serial_secs = serial_timer.Seconds();
  std::printf("%-18s %-22zu %-18d %.2f s @1t  [%s]\n", label, proof_loc, serial.checks_run,
              serial_secs, serial.ok ? "PASS" : serial.failure.c_str());
  report->AddPhase(std::string(label) + " @1t", serial_secs);
  report->Merge(serial.telemetry);
  if (serial.evidence.has_value()) {
    report->AddEvidence(*serial.evidence);
  }
  if (threads == 1) {
    return serial.ok;
  }

  options.num_threads = threads;
  bench::Stopwatch parallel_timer;
  auto parallel = starling::CheckApp(app, options);
  double parallel_secs = parallel_timer.Seconds();
  bool identical = parallel.ok == serial.ok && parallel.failure == serial.failure &&
                   parallel.checks_run == serial.checks_run &&
                   parallel.telemetry == serial.telemetry;
  std::printf("%-18s %-22s %-18d %.2f s @%dt  [%s] %.2fx%s\n", "", "", parallel.checks_run,
              parallel_secs, threads, parallel.ok ? "PASS" : parallel.failure.c_str(),
              parallel_secs > 0 ? serial_secs / parallel_secs : 0.0,
              identical ? "" : "  DIVERGED (determinism bug!)");
  report->AddPhase(std::string(label) + " @" + std::to_string(threads) + "t",
                   parallel_secs);
  return parallel.ok && identical;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 3: software verification effort (Starling)");

  std::string base = std::string(PARFAIT_SOURCE_DIR) + "/";
  size_t harness_loc = CountLoc(base + "src/starling/starling.cc") +
                       CountLoc(base + "src/starling/starling.h");
  size_t ecdsa_proof = CountLoc(base + "src/hsm/ecdsa_app.cc");
  size_t hasher_proof = CountLoc(base + "src/hsm/hasher_app.cc");

  std::string trace = bench::SetupTrace(argc, argv);
  bench::SetupProfile(argc, argv);
  int threads = ResolveNumThreads(bench::ThreadsFlag(argc, argv));
  bench::TelemetryReport report("table3_software_verification", threads);
  std::printf("%-18s %-22s %-18s %s\n", "App", "Proof artifact (LoC)", "Checks run",
              "Verification time");

  bool ok = true;
  {
    starling::StarlingOptions options;
    options.valid_trials = 12;
    options.invalid_trials = 32;
    options.sequence_trials = 2;
    options.sequence_length = 4;
    ok = RunApp("ECDSA signer", hsm::EcdsaApp(), ecdsa_proof, options, threads, &report) &&
         ok;
  }
  ok = RunApp("Password hasher", hsm::HasherApp(), hasher_proof, {}, threads, &report) && ok;
  std::printf("Shared Starling framework: %zu LoC\n", harness_loc);
  bench::PaperNote(
      "ECDSA 500 proof LoC; hasher 200 proof LoC, 2 developer-hours; machine "
      "verification < 1 minute — shape: hasher artifact smaller than ECDSA, both verify "
      "in well under a minute");
  report.Write(bench::FlagStr(argc, argv, "--json", "BENCH_telemetry.json"));
  bench::FinishTrace(trace);
  return ok ? 0 : 1;
}
