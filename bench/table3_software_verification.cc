// Table 3 reproduction: software verification effort — per-app proof-artifact size and
// the wall-clock time for machine verification of the lockstep property (Starling).
// The paper reports 500/200 proof LoC and sub-minute verification; here "proof" is the
// Starling harness plus the app's spec/codec artifact, and verification is the
// property-check run.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/starling/starling.h"
#include "src/support/loc.h"

using namespace parfait;

int main() {
  bench::Header("Table 3: software verification effort (Starling)");

  std::string base = std::string(PARFAIT_SOURCE_DIR) + "/";
  size_t harness_loc = CountLoc(base + "src/starling/starling.cc") +
                       CountLoc(base + "src/starling/starling.h");
  size_t ecdsa_proof = CountLoc(base + "src/hsm/ecdsa_app.cc");
  size_t hasher_proof = CountLoc(base + "src/hsm/hasher_app.cc");

  std::printf("%-18s %-22s %-18s %s\n", "App", "Proof artifact (LoC)", "Checks run",
              "Verification time");

  {
    starling::StarlingOptions options;
    options.valid_trials = 12;
    options.invalid_trials = 32;
    options.sequence_trials = 2;
    options.sequence_length = 4;
    bench::Stopwatch timer;
    auto report = starling::CheckApp(hsm::EcdsaApp(), options);
    double secs = timer.Seconds();
    std::printf("%-18s %-22zu %-18d %.2f s  [%s]\n", "ECDSA signer", ecdsa_proof,
                report.checks_run, secs, report.ok ? "PASS" : report.failure.c_str());
  }
  {
    bench::Stopwatch timer;
    auto report = starling::CheckApp(hsm::HasherApp());
    double secs = timer.Seconds();
    std::printf("%-18s %-22zu %-18d %.2f s  [%s]\n", "Password hasher", hasher_proof,
                report.checks_run, secs, report.ok ? "PASS" : report.failure.c_str());
  }
  std::printf("Shared Starling framework: %zu LoC\n", harness_loc);
  bench::PaperNote(
      "ECDSA 500 proof LoC; hasher 200 proof LoC, 2 developer-hours; machine "
      "verification < 1 minute — shape: hasher artifact smaller than ECDSA, both verify "
      "in well under a minute");
  return 0;
}
