// Table 2 reproduction: lines of code for the case studies. The paper counts the
// spec, driver, app software, and platform hardware per HSM x platform; here the
// corresponding artifacts of this repository are counted with the same breakdown.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/support/loc.h"

using namespace parfait;

namespace {

std::string Src(const std::string& rel) { return std::string(PARFAIT_SOURCE_DIR) + "/" + rel; }

size_t Loc(const std::vector<std::string>& rels) {
  std::vector<std::string> paths;
  for (const auto& r : rels) {
    paths.push_back(Src(r));
  }
  size_t total = CountLocAll(paths);
  if (total == 0) {
    std::fprintf(stderr, "warning: no lines counted for %s\n", rels.front().c_str());
  }
  return total;
}

}  // namespace

int main() {
  bench::Header("Table 2: lines of code for case studies");

  // Spec: the typed specification + codecs inside each app file (the app file also
  // carries the implementation hooks; specs proper are the SpecStep/codec regions, so
  // the whole file is an upper bound — reported as-is and noted).
  size_t ecdsa_spec = Loc({"src/hsm/ecdsa_app.cc"});
  size_t hasher_spec = Loc({"src/hsm/hasher_app.cc"});

  // Driver: wire protocol + codecs shared across levels.
  size_t driver = Loc({"src/soc/soc.cc"});  // WireHost = the circuit-level driver.

  // Software: MiniC firmware (app + crypto substrate + system software).
  size_t ecdsa_sw = Loc({"firmware/app_ecdsa.c", "firmware/p256.c", "firmware/hash.c",
                         "firmware/sys.c", "firmware/boot.s"});
  size_t hasher_sw = Loc({"firmware/app_hasher.c", "firmware/hash.c", "firmware/sys.c",
                          "firmware/boot.s"});

  // Hardware: the cycle-level platform models.
  size_t ibex_hw = Loc({"src/soc/ibex_lite.cc", "src/soc/cpu_common.cc", "src/soc/bus.cc"});
  size_t pico_hw = Loc({"src/soc/pico_lite.cc", "src/soc/cpu_common.cc", "src/soc/bus.cc"});

  std::printf("%-18s %-8s %-8s %-10s %-10s %-10s\n", "HSM", "Spec", "Driver", "Platform",
              "Software", "Hardware");
  std::printf("%-18s %-8zu %-8zu %-10s %-10zu %-10zu\n", "ECDSA signer", ecdsa_spec, driver,
              "IbexLite", ecdsa_sw, ibex_hw);
  std::printf("%-18s %-8s %-8s %-10s %-10zu %-10zu\n", "", "", "", "PicoLite", ecdsa_sw,
              pico_hw);
  std::printf("%-18s %-8zu %-8zu %-10s %-10zu %-10zu\n", "Password hasher", hasher_spec,
              driver, "IbexLite", hasher_sw, ibex_hw);
  std::printf("%-18s %-8s %-8s %-10s %-10zu %-10zu\n", "", "", "", "PicoLite", hasher_sw,
              pico_hw);

  bench::PaperNote(
      "ECDSA spec 40, hasher spec 30, drivers 100; ECDSA sw 2,300 / hasher sw 1,000; "
      "Ibex hw 13,500 Verilog / PicoRV32 hw 3,000");
  std::printf(
      "Shape check: spec is 1-2 orders of magnitude smaller than the implementation it "
      "covers, as in the paper.\n");
  std::printf("  ECDSA: spec %zu vs sw+hw %zu (ratio 1:%.0f)\n", ecdsa_spec,
              ecdsa_sw + ibex_hw, ecdsa_spec ? double(ecdsa_sw + ibex_hw) / ecdsa_spec : 0.0);
  std::printf("  Hasher: spec %zu vs sw+hw %zu (ratio 1:%.0f)\n", hasher_spec,
              hasher_sw + ibex_hw,
              hasher_spec ? double(hasher_sw + ibex_hw) / hasher_spec : 0.0);
  return 0;
}
