// Section 7.2 reproduction: the attack discussion as an executable matrix. Each bug
// class from the paper is injected into the hasher HSM (software bugs as mutated
// implementations, firmware bugs as source overrides, hardware bugs as CPU
// configuration), and the matrix reports which layer of the verification stack
// catches it — which must match the paper's attribution.
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/knox2/cosim.h"
#include "src/knox2/emulator.h"
#include "src/knox2/leakage.h"
#include "src/platform/firmware.h"
#include "src/starling/starling.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"

using namespace parfait;

namespace {

using hsm::App;
using hsm::HsmBuildOptions;
using hsm::HsmSystem;

// A wrapper that overrides the byte-level implementation with a buggy variant
// (software bug classes are caught by Starling against the unchanged specification).
class MutantApp : public App {
 public:
  using Handler = std::function<void(uint8_t*, uint8_t*, uint8_t*)>;
  MutantApp(const App& base, Handler handler) : base_(&base), handler_(std::move(handler)) {}

  const char* name() const override { return base_->name(); }
  size_t state_size() const override { return base_->state_size(); }
  size_t command_size() const override { return base_->command_size(); }
  size_t response_size() const override { return base_->response_size(); }
  Bytes InitStateEncoded() const override { return base_->InitStateEncoded(); }
  std::optional<std::pair<Bytes, Bytes>> SpecStepEncoded(const Bytes& s,
                                                         const Bytes& c) const override {
    return base_->SpecStepEncoded(s, c);
  }
  Bytes EncodeResponseNone() const override { return base_->EncodeResponseNone(); }
  void NativeHandle(uint8_t* state, uint8_t* cmd, uint8_t* resp) const override {
    handler_(state, cmd, resp);
  }
  std::string FirmwareSources() const override { return base_->FirmwareSources(); }
  Bytes RandomValidCommand(Rng& rng) const override { return base_->RandomValidCommand(rng); }
  Bytes RandomInvalidCommand(Rng& rng) const override {
    return base_->RandomInvalidCommand(rng);
  }
  std::vector<std::pair<uint32_t, uint32_t>> SecretStateRanges() const override {
    return base_->SecretStateRanges();
  }

 private:
  const App* base_;
  Handler handler_;
};

struct MatrixRow {
  std::string bug;
  std::string expected_catcher;
  bool caught;
  std::string how;
  // The catching checker's counters and (when it fired) its counterexample artifact.
  telemetry::TelemetrySnapshot telemetry;
  std::optional<telemetry::Evidence> evidence;
};

std::vector<MatrixRow> g_rows;

void Report(const std::string& bug, const std::string& expected, bool caught,
            const std::string& how,
            const telemetry::TelemetrySnapshot& telemetry = {},
            const std::optional<telemetry::Evidence>& evidence = std::nullopt) {
  g_rows.push_back({bug, expected, caught, how, telemetry, evidence});
}

const char* kLeakyHandleHeader = R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    for (u32 i = 0; i < 32; i = i + 1) { state[i] = cmd[1 + i]; }
    resp[0] = 1;
    return;
  }
)";

std::string HasherVariant(const std::string& hash_tag_body) {
  return platform::ReadFirmwareFile("hash.c") + kLeakyHandleHeader + hash_tag_body + "\n}\n";
}

// Runs the full matrix with every checker sharding its trials across `threads`
// worker threads; fills g_rows and returns whether every bug was caught.
bool RunMatrix(int threads) {
  g_rows.clear();
  starling::StarlingOptions starling_options;
  starling_options.num_threads = threads;
  knox2::SelfCompOptions selfcomp_options;
  selfcomp_options.num_threads = threads;
  const App& hasher = hsm::HasherApp();
  Rng rng(2026);

  // 1. Software logic bug: Initialize drops the last secret byte.
  {
    MutantApp mutant(hasher, [&](uint8_t* state, uint8_t* cmd, uint8_t* resp) {
      hasher.NativeHandle(state, cmd, resp);
      if (cmd[0] == 1) {
        state[31] = 0;  // The bug.
      }
    });
    auto report = starling::CheckApp(mutant, starling_options);
    Report("software logic bug (state update wrong)", "Starling", !report.ok,
           report.failure, report.telemetry, report.evidence);
  }

  // 2. Buffer overflow: handle writes one byte past the response buffer.
  {
    MutantApp mutant(hasher, [&](uint8_t* state, uint8_t* cmd, uint8_t* resp) {
      hasher.NativeHandle(state, cmd, resp);
      resp[hasher.response_size()] = 0x41;  // The bug.
    });
    auto report = starling::CheckApp(mutant, starling_options);
    Report("buffer overflow (OOB write)", "Starling (memory safety)", !report.ok,
           report.failure, report.telemetry, report.evidence);
  }

  // 3. Software-level leakage: invalid commands reveal the secret's parity in the
  //    error response.
  {
    MutantApp mutant(hasher, [&](uint8_t* state, uint8_t* cmd, uint8_t* resp) {
      hasher.NativeHandle(state, cmd, resp);
      if (cmd[0] != 1 && cmd[0] != 2) {
        resp[1] = static_cast<uint8_t>(state[0] & 1);  // The bug.
      }
    });
    auto report = starling::CheckApp(mutant, starling_options);
    Report("software-level leakage (error code reveals state)", "Starling", !report.ok,
           report.failure, report.telemetry, report.evidence);
  }

  // 4. Timing leakage from branching on a secret (firmware-level): early exit when the
  //    secret starts with a zero byte.
  {
    HsmBuildOptions options;
    options.source_override = HasherVariant(R"(
  if (tag == 2) {
    u8 digest[32];
    if (state[0] == 0) {
      for (u32 i = 0; i < 32; i = i + 1) { digest[i] = 0; }
    } else {
      hmac_blake2s(digest, state, cmd + 1, 32);
    }
    resp[0] = 2;
    for (u32 i = 0; i < 32; i = i + 1) { resp[1 + i] = digest[i]; }
    return;
  })");
    HsmSystem system(hasher, options);
    Bytes a(hasher.state_size(), 0);
    Bytes b(hasher.state_size(), 1);
    Bytes cmd(hasher.command_size(), 3);
    cmd[0] = 2;
    auto result = knox2::CheckSelfComposition(system, a, b, {cmd}, selfcomp_options);
    Report("timing leak: branch on secret", "Knox2 (self-composition)", !result.ok,
           result.divergence, result.telemetry, result.evidence);
  }

  // 5. Compiler-introduced timing leakage: an "optimized" early-exit comparison
  //    against the secret (the memcmp-style bug).
  {
    HsmBuildOptions options;
    options.source_override = HasherVariant(R"(
  if (tag == 2) {
    u32 match = 1;
    for (u32 i = 0; i < 32; i = i + 1) {
      if (state[i] != cmd[1 + i]) { match = 0; break; }  /* early exit */
    }
    resp[0] = 2;
    resp[1] = (u8)match;
    return;
  })");
    HsmSystem system(hasher, options);
    Rng local(1);
    Bytes a = local.RandomBytes(hasher.state_size());
    Bytes b = a;
    b[0] ^= 0xff;  // Differ in the first byte -> earliest exit.
    Bytes cmd(hasher.command_size(), 0);
    cmd[0] = 2;
    for (size_t i = 1; i < cmd.size(); i++) {
      cmd[i] = a[i - 1];  // Matches state a, mismatches b immediately.
    }
    auto result = knox2::CheckSelfComposition(system, a, b, {cmd}, selfcomp_options);
    Report("timing leak: early-exit compare (memcmp)", "Knox2 (self-composition)",
           !result.ok, result.divergence, result.telemetry, result.evidence);
  }

  // 6. Hardware-level timing leakage: variable-latency multiplier on secret operands.
  {
    HsmBuildOptions options;
    options.variable_latency_mul = true;
    options.source_override = HasherVariant(R"(
  if (tag == 2) {
    u32 s = ((u32)state[0] << 24) | ((u32)state[1] << 16) | ((u32)state[2] << 8)
            | (u32)state[3];
    u32 acc = 0;
    for (u32 i = 0; i < 32; i = i + 1) { acc = acc + s * (u32)cmd[1 + i]; }
    resp[0] = 2;
    resp[1] = (u8)acc;
    return;
  })");
    HsmSystem system(hasher, options);
    Bytes a(hasher.state_size(), 0);
    a[3] = 1;
    Bytes b(hasher.state_size(), 0xff);
    Bytes cmd(hasher.command_size(), 7);
    cmd[0] = 2;
    auto result = knox2::CheckSelfComposition(system, a, b, {cmd}, selfcomp_options);
    Report("timing leak: variable-latency multiplier", "Knox2 (self-composition)",
           !result.ok, result.divergence, result.telemetry, result.evidence);
  }

  // 7. Stack overflow: recursion that fits the abstract machine's unbounded stack but
  //    overruns the SoC's bounded RAM.
  {
    HsmBuildOptions options;
    options.source_override = HasherVariant(R"(
  if (tag == 2) {
    resp[0] = 2;
    resp[1] = (u8)deep(300);
    return;
  })");
    // Prepend the recursive helper before handle().
    options.source_override = platform::ReadFirmwareFile("hash.c") + R"(
u32 deep(u32 n) {
  u32 scratch[256];
  scratch[0] = n;
  scratch[255] = n;
  if (n == 0) { return 0; }
  return deep(n - 1) + scratch[0] + scratch[255];
}
)" + kLeakyHandleHeader + R"(
  if (tag == 2) {
    resp[0] = 2;
    resp[1] = (u8)deep(300);
    return;
  }
}
)";
    HsmSystem system(hasher, options);
    Rng local(2);
    Bytes state = local.RandomBytes(hasher.state_size());
    Bytes cmd(hasher.command_size(), 0);
    cmd[0] = 2;
    auto result = knox2::CosimHandleStep(system, state, cmd);
    Report("stack overflow (bounded SoC RAM vs unbounded Asm stack)", "Knox2 (cosim)",
           !result.ok, result.divergence, result.telemetry, result.evidence);
  }

  // 8. I/O bug in the system software: write_response flips a bit of every byte.
  {
    std::string buggy_sys = platform::ReadFirmwareFile("sys.c");
    size_t pos = buggy_sys.find("*(volatile u32 *)UART_TXDATA = (u32)resp[i];");
    buggy_sys.replace(pos, std::string("*(volatile u32 *)UART_TXDATA = (u32)resp[i];").size(),
                      "*(volatile u32 *)UART_TXDATA = (u32)resp[i] ^ 1;");
    HsmBuildOptions options;
    options.sys_source_override = buggy_sys;
    HsmSystem system(hasher, options);
    Rng local(3);
    Bytes state = local.RandomBytes(hasher.state_size());
    Bytes cmd = hasher.RandomValidCommand(local);
    auto result = knox2::CosimHandleStep(system, state, cmd);
    Report("I/O bug in system software (wrong output encoding)", "Knox2 (wire check)",
           !result.ok, result.divergence, result.telemetry, result.evidence);
  }

  // 9. Pipeline hazard in the CPU: missing load-use forwarding.
  {
    HsmBuildOptions options;
    options.load_use_hazard_bug = true;
    HsmSystem system(hasher, options);
    Rng local(4);
    Bytes state = local.RandomBytes(hasher.state_size());
    Bytes cmd = hasher.RandomValidCommand(local);
    auto result = knox2::CosimHandleStep(system, state, cmd);
    Report("pipeline hazard in the CPU (missing forwarding)", "Knox2 (cosim)", !result.ok,
           result.divergence, result.telemetry, result.evidence);
  }

  // 10. The unmodified HSM: every checker must pass (no false positives).
  {
    HsmSystem system(hasher, HsmBuildOptions{});
    Rng local(5);
    Bytes state = local.RandomBytes(hasher.state_size());
    Bytes cmd = hasher.RandomValidCommand(local);
    auto starling_report = starling::CheckApp(hasher, starling_options);
    auto cosim = knox2::CosimHandleStep(system, state, cmd);
    Bytes variant = knox2::MakeSecretVariant(hasher, state, local);
    auto selfcomp = knox2::CheckSelfComposition(system, state, variant, {cmd}, selfcomp_options);
    bool clean = starling_report.ok && cosim.ok && selfcomp.ok;
    telemetry::TelemetrySnapshot combined;
    combined.Merge(starling_report.telemetry);
    combined.Merge(cosim.telemetry);
    combined.Merge(selfcomp.telemetry);
    Report("(control) unmodified HSM", "none — all checks pass", clean,
           clean ? "all green" : "FALSE POSITIVE", combined);
  }

  bool all_ok = true;
  for (const auto& row : g_rows) {
    all_ok = all_ok && row.caught;
  }
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Section 7.2: attack matrix — injected bugs vs the checker that catches them");
  std::string trace = bench::SetupTrace(argc, argv);
  int threads = ResolveNumThreads(bench::ThreadsFlag(argc, argv));

  bench::Stopwatch serial_timer;
  bool serial_ok = RunMatrix(1);
  double serial_secs = serial_timer.Seconds();
  std::vector<MatrixRow> serial_rows = g_rows;

  bool ok = serial_ok;
  bool identical = true;
  double parallel_secs = serial_secs;
  if (threads != 1) {
    bench::Stopwatch parallel_timer;
    ok = RunMatrix(threads);
    parallel_secs = parallel_timer.Seconds();
    // The matrix's attributions must not depend on thread count.
    identical = g_rows.size() == serial_rows.size();
    for (size_t i = 0; identical && i < g_rows.size(); i++) {
      identical = g_rows[i].caught == serial_rows[i].caught &&
                  g_rows[i].how == serial_rows[i].how &&
                  g_rows[i].telemetry == serial_rows[i].telemetry;
    }
  }

  std::printf("%-55s %-30s %s\n", "Injected bug (§7.2 class)", "Catching checker", "Caught");
  for (const auto& row : g_rows) {
    std::printf("%-55s %-30s %s\n", row.bug.c_str(), row.expected_catcher.c_str(),
                row.caught ? "YES" : "NO  <-- PROBLEM");
  }
  if (threads != 1) {
    std::printf("\nMatrix wall-clock: %.2f s @1 thread vs %.2f s @%d threads (%.2fx); "
                "attributions %s\n",
                serial_secs, parallel_secs, threads,
                parallel_secs > 0 ? serial_secs / parallel_secs : 0.0,
                identical ? "identical" : "DIVERGED (determinism bug!)");
  }

  // Unified telemetry artifact: serial-pass snapshots merged in matrix order (identical
  // at every --threads value), plus every caught bug's counterexample artifact.
  bench::TelemetryReport report("attack_matrix", threads);
  report.AddPhase("matrix @1t", serial_secs);
  if (threads != 1) {
    report.AddPhase("matrix @" + std::to_string(threads) + "t", parallel_secs);
  }
  for (const MatrixRow& row : serial_rows) {
    report.Merge(row.telemetry);
    if (row.evidence.has_value()) {
      report.AddEvidence(*row.evidence);
    }
  }
  report.Write(bench::FlagStr(argc, argv, "--json", "BENCH_telemetry.json"));
  bench::FinishTrace(trace);
  return (ok && serial_ok && identical) ? 0 : 1;
}
