// Ablation (DESIGN.md decision 1): taint tracking (a leakage-model checker) versus
// self-composition (cycle-accurate ground truth). The paper's related-work discussion
// argues leakage-model tools are only as sound as their hardware model; this benchmark
// shows (a) the cost of each technique and (b) a concrete case where the leakage model
// is *conservative* (flags a benign pattern) while self-composition is exact.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/knox2/leakage.h"
#include "src/platform/firmware.h"
#include "src/support/rng.h"

using namespace parfait;

int main() {
  bench::Header("Ablation: taint tracking (leakage model) vs self-composition (exact)");
  const hsm::App& app = hsm::HasherApp();
  Rng rng(3);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  cmd[0] = 2;

  // Cost comparison on the clean hasher.
  double taint_secs;
  double selfcomp_secs;
  {
    hsm::HsmBuildOptions options;
    options.taint_tracking = true;
    hsm::HsmSystem system(app, options);
    bench::Stopwatch timer;
    auto taint = knox2::RunTaintCheck(system, state, {cmd});
    taint_secs = timer.Seconds();
    std::printf("taint tracking:   %.3f s, %zu policy violations (1 circuit instance)\n",
                taint_secs, taint.leaks.size());
  }
  {
    hsm::HsmSystem system(app, hsm::HsmBuildOptions{});
    Bytes variant = knox2::MakeSecretVariant(app, state, rng);
    bench::Stopwatch timer;
    auto result = knox2::CheckSelfComposition(system, state, variant, {cmd});
    selfcomp_secs = timer.Seconds();
    std::printf("self-composition: %.3f s, %s (2 circuit instances)\n", selfcomp_secs,
                result.ok ? "constant-time confirmed" : result.divergence.c_str());
  }

  // Precision comparison: a benign pattern — the secret is multiplied, which the
  // leakage model flags (multipliers *may* be variable-latency), but on this platform
  // the multiplier is fixed-latency, so self-composition correctly accepts it.
  std::string mul_app = platform::ReadFirmwareFile("hash.c") + R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    for (u32 i = 0; i < 32; i = i + 1) { state[i] = cmd[1 + i]; }
    resp[0] = 1;
    return;
  }
  if (tag == 2) {
    u32 s = (u32)state[0];
    u32 acc = s * 2654435761;
    resp[0] = 2;
    resp[1] = (u8)acc;
    return;
  }
}
)";
  bool taint_flags = false;
  bool selfcomp_flags = false;
  {
    hsm::HsmBuildOptions options;
    options.taint_tracking = true;
    options.source_override = mul_app;
    hsm::HsmSystem system(app, options);
    auto taint = knox2::RunTaintCheck(system, state, {cmd});
    for (const auto& leak : taint.leaks) {
      if (leak.what.find("multiply") != std::string::npos) {
        taint_flags = true;
      }
    }
  }
  {
    hsm::HsmBuildOptions options;
    options.source_override = mul_app;  // Fixed-latency multiplier (default).
    hsm::HsmSystem system(app, options);
    Bytes a(app.state_size(), 1);
    Bytes b(app.state_size(), 0xfe);
    auto result = knox2::CheckSelfComposition(system, a, b, {cmd});
    selfcomp_flags = !result.ok;
  }
  std::printf("\nsecret multiply on fixed-latency hardware:\n");
  std::printf("  leakage model (taint):  %s\n",
              taint_flags ? "FLAGGED (conservative false positive)" : "clean");
  std::printf("  self-composition:       %s\n",
              selfcomp_flags ? "FLAGGED" : "clean (exact: timing is operand-independent)");
  bench::PaperNote(
      "constant-time tools 'do not account for leakage at the hardware level, so their "
      "soundness depends on whether their assumed leakage model ... is accurate'");
  return (taint_flags && !selfcomp_flags) ? 0 : 1;
}
