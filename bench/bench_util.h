// Shared helpers for the table-reproduction benchmark binaries.
#ifndef PARFAIT_BENCH_BENCH_UTIL_H_
#define PARFAIT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace parfait::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PaperNote(const std::string& note) {
  std::printf("    (paper: %s)\n", note.c_str());
}

}  // namespace parfait::bench

#endif  // PARFAIT_BENCH_BENCH_UTIL_H_
