// Shared helpers for the table-reproduction benchmark binaries.
#ifndef PARFAIT_BENCH_BENCH_UTIL_H_
#define PARFAIT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/platform/model_asm.h"
#include "src/support/prof.h"
#include "src/support/profiler.h"
#include "src/support/telemetry.h"

namespace parfait::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PaperNote(const std::string& note) {
  std::printf("    (paper: %s)\n", note.c_str());
}

// Parses `--name=value` from the command line; returns `fallback` when absent. The
// returned pointer aliases argv (or `fallback`), so it outlives any bench main().
// A bare `--name` with no `=value` is an error (exit 2, naming the argument), not a
// silent fallback — a typoed knob must never quietly benchmark the default.
inline const char* FlagStr(int argc, char** argv, const char* name,
                           const char* fallback = "") {
  size_t len = std::strlen(name);
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], name, len) != 0) {
      continue;
    }
    if (argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
    if (argv[i][len] == '\0') {
      std::fprintf(stderr, "bench: flag '%s' is missing its value (use %s=VALUE)\n",
                   argv[i], name);
      std::exit(2);
    }
  }
  return fallback;
}

// Parses `--name=N`; returns `fallback` when absent. A value that is not a whole
// decimal integer is an error (exit 2, naming the offending argument).
inline int FlagInt(int argc, char** argv, const char* name, int fallback = 0) {
  const char* value = FlagStr(argc, argv, name, nullptr);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "bench: flag %s=%s is not an integer\n", name, value);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

// The --backend=interp|dbt knob: selects the RV32 execution backend every ModelAsm
// in the process uses (threaded-dispatch binary translation vs the decode-cache
// interpreter), so table benches measure either backend from the same binary. The
// default is Machine::DefaultBackend() (the PARFAIT_BACKEND environment variable,
// or the interpreter). Returns the resolved name for the bench to echo; an unknown
// value is an error (exit 2), never a silent fallback.
inline const char* ApplyBackendFlag(int argc, char** argv) {
  const char* name = FlagStr(argc, argv, "--backend", nullptr);
  if (name == nullptr) {
    return platform::ModelAsm::backend() == riscv::Machine::Backend::kDBT ? "dbt"
                                                                          : "interp";
  }
  if (std::strcmp(name, "interp") == 0) {
    platform::ModelAsm::SetBackend(riscv::Machine::Backend::kInterpreter);
  } else if (std::strcmp(name, "dbt") == 0) {
    platform::ModelAsm::SetBackend(riscv::Machine::Backend::kDBT);
  } else {
    std::fprintf(stderr, "bench: --backend=%s is not 'interp' or 'dbt'\n", name);
    std::exit(2);
  }
  return name;
}

// The --threads=N knob every verification bench takes (0 = all hardware threads):
// throughput is reported at 1 vs N threads so parallel speedup is measured, not
// asserted.
inline int ThreadsFlag(int argc, char** argv, int fallback = 0) {
  return FlagInt(argc, argv, "--threads", fallback);
}

// Arms Chrome-trace capture when requested via --trace=<path> or the PARFAIT_TRACE
// environment variable (flag wins). Returns the trace path, or "" when tracing stays
// off — in which case the global registry remains disabled and spans cost one relaxed
// load, keeping measured throughput honest.
inline std::string SetupTrace(int argc, char** argv) {
  std::string path = FlagStr(argc, argv, "--trace", "");
  if (path.empty()) {
    const char* env = std::getenv("PARFAIT_TRACE");
    if (env != nullptr) {
      path = env;
    }
  }
  if (!path.empty()) {
    telemetry::Telemetry::Global().EnableTracing();
  }
  return path;
}

// Arms the profiler when requested via --profile=1 (any nonzero value; FlagStr
// rejects a bare --profile) or the PARFAIT_PROFILE environment variable. Tracing
// implies profiling: a --trace run already paid for the metric path, and the
// WorkSpan mirror is what puts work-unit tags on the Chrome timeline. Returns
// whether the profiler is on; when it is, TelemetryReport::ToJson embeds the
// runtime-only "profile" section.
inline bool SetupProfile(int argc, char** argv) {
  bool on = FlagInt(argc, argv, "--profile", 0) != 0;
  if (!on) {
    const char* env = std::getenv("PARFAIT_PROFILE");
    on = env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  }
  if (!on) {
    on = telemetry::Telemetry::Global().tracing();
  }
  if (on) {
    profiler::Profiler::Global().Enable();
  }
  return on;
}

// Arms the global telemetry registry when --telemetry-json=<path> asks for a
// snapshot dump; FinishTelemetryJson writes it at exit. This is how the tools
// (parfait-lint, parfait-tv) get machine-readable telemetry without being benches.
inline std::string SetupTelemetryJson(int argc, char** argv) {
  std::string path = FlagStr(argc, argv, "--telemetry-json", "");
  if (!path.empty()) {
    telemetry::Telemetry::Global().Enable();
  }
  return path;
}

// Writes {"tool":...,"telemetry":...[,"evidence":...][,"profile":...]} from the
// global registry if SetupTelemetryJson armed a path; returns false on I/O failure
// (and true when no dump was requested).
inline bool FinishTelemetryJson(const std::string& path, const std::string& tool) {
  if (path.empty()) {
    return true;
  }
  const telemetry::Telemetry& global = telemetry::Telemetry::Global();
  std::string out = "{\"tool\":\"" + tool + "\",\"telemetry\":" +
                    global.Snapshot().ToJson();
  std::vector<telemetry::Evidence> evidence = global.evidence();
  if (!evidence.empty()) {
    out += ",\"evidence\":[";
    for (size_t i = 0; i < evidence.size(); i++) {
      out += (i > 0 ? "," : "") + evidence[i].ToJson();
    }
    out += "]";
  }
  if (profiler::Profiler::Global().enabled()) {
    out += ",\"profile\":" + prof::ProfileJson(profiler::Profiler::Global());
  }
  out += "}";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  bool ok = std::fclose(f) == 0 && written == out.size();
  if (ok) {
    std::printf("telemetry written to %s\n", path.c_str());
  }
  return ok;
}

// Build/runtime provenance stamped into every BENCH_*.json "meta" object so a
// parfait-prof diff names what it compared. The macros come from the top-level
// CMakeLists (CMAKE_BUILD_TYPE; git describe at configure time as a fallback).
#ifndef PARFAIT_GIT_DESCRIBE
#define PARFAIT_GIT_DESCRIBE "unknown"
#endif
#ifndef PARFAIT_BUILD_TYPE
#define PARFAIT_BUILD_TYPE "unknown"
#endif
#ifndef PARFAIT_SOURCE_DIR
#define PARFAIT_SOURCE_DIR "."
#endif

// The git stamp, resolved when the bench actually runs. The configure-time macro
// goes stale the moment a commit lands without re-running cmake (every meta then
// claims an old revision, typically with a misleading "-dirty" suffix), so the
// meta stamp asks the source tree itself and only falls back to the macro when
// git is unavailable (shipped source tarball, no .git directory). Cached: one
// subprocess per process, not per report.
inline const std::string& RuntimeGitDescribe() {
  static const std::string cached = [] {
    std::string out;
#if !defined(_WIN32)
    std::FILE* pipe = popen(
        "git -C \"" PARFAIT_SOURCE_DIR "\" describe --always --dirty 2>/dev/null", "r");
    if (pipe != nullptr) {
      char buf[256];
      while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
        out += buf;
      }
      if (pclose(pipe) != 0) {
        out.clear();
      }
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    // A describe is a hex id possibly with tag/-dirty decorations; anything with
    // spaces is an error message, not a revision.
    if (out.find(' ') != std::string::npos) {
      out.clear();
    }
#endif
    return out.empty() ? std::string(PARFAIT_GIT_DESCRIBE) : out;
  }();
  return cached;
}

// Writes the captured trace if SetupTrace armed one (open the file in
// chrome://tracing or https://ui.perfetto.dev).
inline void FinishTrace(const std::string& path) {
  if (path.empty()) {
    return;
  }
  if (telemetry::Telemetry::Global().WriteTrace(path)) {
    std::printf("trace written to %s (open in chrome://tracing or Perfetto)\n",
                path.c_str());
  } else {
    std::printf("FAILED to write trace to %s\n", path.c_str());
  }
}

// Accumulates one bench run's machine-readable summary and writes it as
// BENCH_telemetry.json:
//   {"bench":...,"threads":...,"meta":{...},"phases":[{"name":...,"seconds":...}],
//    "telemetry":{"counters":...,"histograms":...},"evidence":[...],"pool":{...},
//    "profile":{...}}
// The "telemetry" object is built exclusively from checker-report snapshots merged in
// a fixed program order, so it is byte-identical at every --threads value. The meta
// stamp (backend, build type, git describe), wall-clock phases, evidence, and the
// pool/profile sections (present only when the global registry / profiler is
// enabled, e.g. under --trace or --profile=1) sit outside that determinism contract.
class TelemetryReport {
 public:
  TelemetryReport(std::string bench, int threads)
      : bench_(std::move(bench)), threads_(threads) {}

  // Records the resolved --backend name (from ApplyBackendFlag) for the meta stamp.
  void SetBackend(std::string backend) { backend_ = std::move(backend); }

  void AddPhase(const std::string& name, double seconds) {
    phases_.push_back({name, seconds});
  }
  void Merge(const telemetry::TelemetrySnapshot& snapshot) { telemetry_.Merge(snapshot); }
  void AddEvidence(const telemetry::Evidence& evidence) { evidence_.push_back(evidence); }

  const telemetry::TelemetrySnapshot& snapshot() const { return telemetry_; }

  bool Write(const std::string& path = "BENCH_telemetry.json") const {
    std::string json = ToJson();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    bool ok = std::fclose(f) == 0 && written == json.size();
    if (ok) {
      std::printf("telemetry written to %s\n", path.c_str());
    }
    return ok;
  }

  // The "meta" object alone, reusable by benches that write bespoke JSON (table4's
  // BENCH_parallel.json) so every emitted record carries the same provenance.
  std::string MetaJson() const {
    return "{\"backend\":\"" + (backend_.empty() ? "default" : backend_) +
           "\",\"threads\":" + std::to_string(threads_) + ",\"build\":\"" +
           PARFAIT_BUILD_TYPE "\",\"git\":\"" + RuntimeGitDescribe() + "\"}";
  }

  std::string ToJson() const {
    std::string out = "{\"bench\":\"" + bench_ + "\",\"threads\":" +
                      std::to_string(threads_) + ",\"meta\":" + MetaJson() +
                      ",\"phases\":[";
    for (size_t i = 0; i < phases_.size(); i++) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s{\"name\":\"%s\",\"seconds\":%.6f}",
                    i > 0 ? "," : "", phases_[i].name.c_str(), phases_[i].seconds);
      out += buf;
    }
    out += "],\"telemetry\":" + telemetry_.ToJson();
    if (!evidence_.empty()) {
      out += ",\"evidence\":[";
      for (size_t i = 0; i < evidence_.size(); i++) {
        if (i > 0) {
          out += ",";
        }
        out += evidence_[i].ToJson();
      }
      out += "]";
    }
    // Pool/runtime stats live in the global registry and only exist when it is
    // enabled; they are reported separately because they are schedule-dependent.
    const telemetry::Telemetry& global = telemetry::Telemetry::Global();
    if (global.enabled()) {
      telemetry::TelemetrySnapshot runtime = global.Snapshot();
      out += ",\"pool\":{\"tasks\":" + std::to_string(runtime.CounterValue("pool/tasks")) +
             ",\"steals\":" + std::to_string(runtime.CounterValue("pool/steals")) +
             ",\"idle_ns\":" + std::to_string(runtime.CounterValue("pool/idle_ns")) +
             ",\"busy_ns\":" + std::to_string(runtime.CounterValue("pool/busy_ns")) + "}";
    }
    // Work-unit attribution, lane timelines, and contention probes — runtime-only,
    // consumed by `parfait-prof report`.
    if (profiler::Profiler::Global().enabled()) {
      out += ",\"profile\":" + prof::ProfileJson(profiler::Profiler::Global());
    }
    out += "}";
    return out;
  }

 private:
  struct Phase {
    std::string name;
    double seconds;
  };

  std::string bench_;
  std::string backend_;
  int threads_;
  std::vector<Phase> phases_;
  telemetry::TelemetrySnapshot telemetry_;
  std::vector<telemetry::Evidence> evidence_;
};

}  // namespace parfait::bench

#endif  // PARFAIT_BENCH_BENCH_UTIL_H_
