// Shared helpers for the table-reproduction benchmark binaries.
#ifndef PARFAIT_BENCH_BENCH_UTIL_H_
#define PARFAIT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace parfait::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PaperNote(const std::string& note) {
  std::printf("    (paper: %s)\n", note.c_str());
}

// Parses --threads=N (0 = all hardware threads) from the command line. Every
// verification bench takes this flag and reports throughput at 1 vs N threads so
// parallel speedup is measured, not asserted. Returns `fallback` when absent.
inline int ThreadsFlag(int argc, char** argv, int fallback = 0) {
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return std::atoi(argv[i] + 10);
    }
  }
  return fallback;
}

}  // namespace parfait::bench

#endif  // PARFAIT_BENCH_BENCH_UTIL_H_
