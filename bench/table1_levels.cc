// Table 1 reproduction: the levels of abstraction used to verify the case-study HSMs,
// printed with live data from the actual artifacts (types, sizes, step granularity).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/hsm/hsm_system.h"
#include "src/support/rng.h"

using namespace parfait;

int main() {
  bench::Header("Table 1: levels of abstraction (live artifact data)");

  const hsm::App& app = hsm::HasherApp();
  hsm::HsmSystem system(app, hsm::HsmBuildOptions{});

  // Run one Hash command at each level to show the step granularity.
  Rng rng(1);
  Bytes state = app.InitStateEncoded();
  Bytes cmd = app.RandomValidCommand(rng);
  cmd[0] = 2;

  // App Spec level: one step.
  auto spec = app.SpecStepEncoded(state, cmd);

  // App Impl [C] level (dual-compiled MiniC): one handle() call.
  Bytes impl_state = state;
  Bytes impl_cmd = cmd;
  Bytes impl_resp(app.response_size());
  app.NativeHandle(impl_state.data(), impl_cmd.data(), impl_resp.data());

  // App Impl [Asm] level: one whole-command step, measured in instructions.
  auto asm_step = system.model_asm().Step(state, cmd, 100'000'000);

  // SoC level: one command, measured in cycles.
  auto soc = system.NewSoc();
  soc::WireHost host(soc.get());
  auto wire = host.Transact(cmd, app.response_size(), 100'000'000);

  std::printf("%-22s %-28s %-26s %s\n", "Level", "State", "I/O", "Step");
  std::printf("%-22s %-28s %-26s %s\n", "App Spec [typed]", "state_t (typed record)",
              "command_t / response_t", "step()  [1 step/op]");
  std::printf("%-22s %-28s %-26s %s\n", "App Impl [MiniC]",
              ("bytes[" + std::to_string(app.state_size()) + "]").c_str(),
              ("bytes[" + std::to_string(app.command_size()) + "] / bytes[" +
               std::to_string(app.response_size()) + "]")
                  .c_str(),
              "handle()  [1 step/op]");
  std::printf("%-22s %-28s %-26s %s\n", "App Impl [C native]", "bytes", "bytes",
              "handle()  [1 step/op]");
  std::printf("%-22s %-28s %-26s %s (%llu instrs for this op)\n", "App Impl [Asm]", "bytes",
              "bytes", "handle()  [1 step/op]",
              static_cast<unsigned long long>(asm_step.instret));
  std::printf("%-22s %-28s %-26s %s (%llu cycles for this op)\n", "System-on-a-Chip",
              "registers & memories", "wires (rx/tx handshake)", "cycle step",
              static_cast<unsigned long long>(soc->cycles()));

  bool all_equal = spec.has_value() && impl_resp == spec->second && asm_step.ok &&
                   asm_step.response == spec->second && wire.has_value() &&
                   *wire == spec->second;
  std::printf("\nAll five levels computed an identical response for this operation: %s\n",
              all_equal ? "YES" : "NO (BUG)");
  return all_equal ? 0 : 1;
}
