// Microbenchmarks for the host crypto substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "src/crypto/blake2s.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/hmac.h"
#include "src/crypto/p256.h"
#include "src/crypto/sha256.h"
#include "src/support/rng.h"

namespace parfait::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Blake2s(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Blake2s::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Blake2s)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(3);
  Bytes key = rng.RandomBytes(32);
  Bytes data = rng.RandomBytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_MontMul(benchmark::State& state) {
  const P256& curve = P256::Get();
  Rng rng(4);
  Bn256 a;
  Bn256 b;
  for (auto& l : a.limb) l = rng.Next32();
  for (auto& l : b.limb) l = rng.Next32();
  a = curve.field().Reduce(a);
  b = curve.field().Reduce(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.field().Mul(a, b));
  }
}
BENCHMARK(BM_MontMul);

void BM_P256ScalarBaseMul(benchmark::State& state) {
  const P256& curve = P256::Get();
  Rng rng(5);
  Bn256 k;
  for (auto& l : k.limb) l = rng.Next32();
  k = curve.scalar().Reduce(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.ScalarBaseMul(k));
  }
}
BENCHMARK(BM_P256ScalarBaseMul);

void BM_EcdsaSign(benchmark::State& state) {
  Rng rng(6);
  std::array<uint8_t, 32> msg;
  std::array<uint8_t, 32> key;
  std::array<uint8_t, 32> nonce;
  rng.Fill(msg);
  rng.Fill(key);
  rng.Fill(nonce);
  key[0] &= 0x7f;
  nonce[0] &= 0x7f;
  for (auto _ : state) {
    EcdsaSignature sig;
    benchmark::DoNotOptimize(EcdsaSign(msg, key, nonce, &sig));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  Rng rng(7);
  std::array<uint8_t, 32> msg;
  std::array<uint8_t, 32> key;
  std::array<uint8_t, 32> nonce;
  rng.Fill(msg);
  rng.Fill(key);
  rng.Fill(nonce);
  key[0] &= 0x7f;
  nonce[0] &= 0x7f;
  EcdsaSignature sig;
  EcdsaSign(msg, key, nonce, &sig);
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  EcdsaPublicKey(key, px, py);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdsaVerify(msg, px, py, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

}  // namespace
}  // namespace parfait::crypto

BENCHMARK_MAIN();
