// Table 4 reproduction: hardware verification effort and verification time for all
// four HSMs (two apps x two platforms). For each combination, Knox2 runs the
// assembly-circuit co-simulation for one representative command plus the
// self-composition leakage check; the table reports wall-clock time, simulated cycles,
// and throughput (cycles per second of verification) — the paper's key shape is that
// the simpler PicoRV32-style core verifies at *higher* cycles/s but needs *more*
// cycles (and thus more wall-clock) per operation.
//
// --threads=N (0 = all hardware threads) schedules the four HSM rows — and each row's
// self-composition obligations — across N threads. When N != 1 the whole suite runs
// at 1 thread and again at N, reports both throughputs, verifies the check outcomes
// are identical, and emits BENCH_parallel.json with the measured speedup.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/knox2/cosim.h"
#include "src/knox2/leakage.h"
#include "src/support/loc.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"

using namespace parfait;

namespace {

struct Row {
  const char* platform;
  const char* app_name;
  double seconds;
  uint64_t cycles;
  bool ok;
  // Cosim + self-composition counters for this row, merged in program order —
  // schedule-independent, so rows compare bit-identically across thread counts.
  telemetry::TelemetrySnapshot telemetry;
};

struct Pass {
  std::vector<Row> rows;
  double seconds = 0;
  uint64_t cycles = 0;
  bool ok = true;
};

Row RunOne(const hsm::App& app, soc::CpuKind cpu, int num_threads) {
  hsm::HsmBuildOptions options;
  options.cpu = cpu;
  hsm::HsmSystem system(app, options);
  Rng rng(42);

  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd(app.command_size(), 0);
  cmd[0] = 2;  // Sign / Hash: the expensive operation.
  for (size_t i = 1; i < cmd.size() && i <= 32; i++) {
    cmd[i] = rng.Byte();
  }

  bench::Stopwatch timer;
  uint64_t cycles = 0;
  bool ok = true;

  // Functional-physical simulation (assembly-circuit synchronization). The
  // retirement-stream comparison is inherently per-command serial; parallelism comes
  // from running rows and self-composition obligations concurrently.
  auto cosim = knox2::CosimHandleStep(system, state, cmd);
  ok = ok && cosim.ok;
  if (!cosim.ok) {
    std::fprintf(stderr, "cosim failed: %s\n", cosim.divergence.c_str());
  }
  cycles += cosim.stats.cycles;

  // Self-composition non-leakage over a secret-differing state pair.
  Bytes variant = knox2::MakeSecretVariant(app, state, rng);
  knox2::SelfCompOptions selfcomp_options;
  selfcomp_options.num_threads = num_threads;
  auto selfcomp = knox2::CheckSelfComposition(system, state, variant, {cmd}, selfcomp_options);
  ok = ok && selfcomp.ok;
  if (!selfcomp.ok) {
    std::fprintf(stderr, "self-composition failed: %s\n", selfcomp.divergence.c_str());
  }
  cycles += 2 * selfcomp.cycles;  // Two circuit instances simulated.

  Row row{soc::CpuKindName(cpu), app.name(), timer.Seconds(), cycles, ok, {}};
  row.telemetry.Merge(cosim.telemetry);
  row.telemetry.Merge(selfcomp.telemetry);
  return row;
}

// One full Table 4 suite at the given thread count: the four app x platform rows are
// independent verification jobs scheduled on the pool.
Pass RunSuite(int num_threads) {
  struct Job {
    soc::CpuKind cpu;
    const hsm::App* app;
  };
  std::vector<Job> jobs;
  for (soc::CpuKind cpu : {soc::CpuKind::kIbexLite, soc::CpuKind::kPicoLite}) {
    jobs.push_back({cpu, &hsm::EcdsaApp()});
    jobs.push_back({cpu, &hsm::HasherApp()});
  }

  Pass pass;
  pass.rows.resize(jobs.size());
  bench::Stopwatch timer;
  ThreadPool pool(num_threads);
  ParallelFor(pool, jobs.size(), [&](size_t i) {
    pass.rows[i] = RunOne(*jobs[i].app, jobs[i].cpu, num_threads);
  });
  pass.seconds = timer.Seconds();
  for (const Row& row : pass.rows) {
    pass.cycles += row.cycles;
    pass.ok = pass.ok && row.ok;
  }
  return pass;
}

// The determinism guarantee, checked: the same checks at different thread counts
// must reach byte-identical outcomes (pass/fail and cycle counts per row).
bool SameOutcomes(const Pass& a, const Pass& b) {
  if (a.rows.size() != b.rows.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rows.size(); i++) {
    if (a.rows[i].ok != b.rows[i].ok || a.rows[i].cycles != b.rows[i].cycles ||
        !(a.rows[i].telemetry == b.rows[i].telemetry)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 4: hardware verification effort and verification time (Knox2)");
  std::printf("Model backend: %s\n", bench::ApplyBackendFlag(argc, argv));

  std::string base = std::string(PARFAIT_SOURCE_DIR) + "/";
  size_t emulator_loc = CountLoc(base + "src/knox2/emulator.cc");
  size_t proof_loc = CountLoc(base + "src/knox2/cosim.cc") +
                     CountLoc(base + "src/knox2/leakage.cc");
  std::printf("Emulator template: %zu LoC; Knox2 proof/checker code: %zu LoC; register/\n",
              emulator_loc, proof_loc);
  std::printf("pointer mapping: identity on the shared flat address map (figure 10).\n\n");

  std::string trace = bench::SetupTrace(argc, argv);
  int threads = ResolveNumThreads(bench::ThreadsFlag(argc, argv));
  Pass serial;
  Pass parallel;
  bool compared = threads != 1;
  if (compared) {
    serial = RunSuite(1);
    parallel = RunSuite(threads);
  } else {
    serial = RunSuite(1);
    parallel = serial;
  }

  std::printf("%-10s %-18s %-12s %-16s %-12s %s\n", "Platform", "App", "Time (s)",
              "Cycles simulated", "Cycles/s", "Result");
  for (const Row& row : parallel.rows) {
    std::printf("%-10s %-18s %-12.2f %-16llu %-12.0f %s\n", row.platform, row.app_name,
                row.seconds, static_cast<unsigned long long>(row.cycles),
                row.seconds > 0 ? row.cycles / row.seconds : 0.0,
                row.ok ? "PASS" : "FAIL");
  }

  double serial_rate = serial.seconds > 0 ? serial.cycles / serial.seconds : 0.0;
  double parallel_rate = parallel.seconds > 0 ? parallel.cycles / parallel.seconds : 0.0;
  bool identical = SameOutcomes(serial, parallel);
  if (compared) {
    std::printf("\nParallel verification: 1 thread %.2f s (%.0f cycles/s) vs %d threads "
                "%.2f s (%.0f cycles/s) — %.2fx speedup; outcomes %s\n",
                serial.seconds, serial_rate, threads, parallel.seconds, parallel_rate,
                parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0,
                identical ? "identical" : "DIVERGED (determinism bug!)");
  } else {
    std::printf("\nParallel verification: ran at 1 thread (pass --threads=N to measure "
                "the 1-vs-N speedup)\n");
  }

  // Machine-readable artifact for CI trend tracking.
  if (FILE* json = std::fopen("BENCH_parallel.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"table4_hardware_verification\",\n"
                 "  \"serial\": {\"threads\": 1, \"seconds\": %.4f, \"cycles\": %llu, "
                 "\"cycles_per_sec\": %.1f},\n"
                 "  \"parallel\": {\"threads\": %d, \"seconds\": %.4f, \"cycles\": %llu, "
                 "\"cycles_per_sec\": %.1f},\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"outcomes_identical\": %s\n"
                 "}\n",
                 serial.seconds, static_cast<unsigned long long>(serial.cycles), serial_rate,
                 threads, parallel.seconds, static_cast<unsigned long long>(parallel.cycles),
                 parallel_rate,
                 parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0,
                 identical ? "true" : "false");
    std::fclose(json);
    std::printf("Wrote BENCH_parallel.json\n");
  }

  // Unified telemetry artifact: the serial pass's row snapshots merged in row order
  // (identical at every --threads value), plus wall-clock phases for both passes.
  bench::TelemetryReport report("table4_hardware_verification", threads);
  for (const Row& row : serial.rows) {
    report.Merge(row.telemetry);
  }
  report.AddPhase("suite @1t", serial.seconds);
  if (compared) {
    report.AddPhase("suite @" + std::to_string(threads) + "t", parallel.seconds);
  }
  report.Write(bench::FlagStr(argc, argv, "--json", "BENCH_telemetry.json"));
  bench::FinishTrace(trace);

  bench::PaperNote(
      "Ibex: ECDSA 80 h at 304 cycles/s, hasher 0.10 h; PicoRV32: ECDSA 100 h at 671 "
      "cycles/s, hasher 0.14 h — shape: ECDSA orders of magnitude costlier than the "
      "hasher; PicoRV32 higher cycles/s yet longer wall-clock (more cycles per op)");
  return (parallel.ok && identical) ? 0 : 1;
}
