// Table 4 reproduction: hardware verification effort and verification time for all
// four HSMs (two apps x two platforms). For each combination, Knox2 runs the
// assembly-circuit co-simulation for one representative command plus the
// self-composition leakage check; the table reports wall-clock time, simulated cycles,
// and throughput (cycles per second of verification) — the paper's key shape is that
// the simpler PicoRV32-style core verifies at *higher* cycles/s but needs *more*
// cycles (and thus more wall-clock) per operation.
//
// --threads=N (0 = all hardware threads) schedules the four HSM rows — and each row's
// self-composition obligations — across N threads. When N != 1 the whole suite runs
// at 1 thread and again at N, reports both throughputs, verifies the check outcomes
// are identical, and emits BENCH_parallel.json with the measured speedup. Without an
// explicit --backend= the suite runs one leg per execution backend (interp, dbt) so
// the parallel-scaling record covers both; --backend=interp|dbt restricts to one leg.
// --profile=1 (or a --trace= run) embeds the work-unit attribution, lane utilization,
// and contention-probe "profile" section that `parfait-prof report` renders.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/knox2/cosim.h"
#include "src/knox2/leakage.h"
#include "src/support/loc.h"
#include "src/support/parallel.h"
#include "src/support/profiler.h"
#include "src/support/rng.h"

using namespace parfait;

namespace {

struct Row {
  const char* platform;
  const char* app_name;
  double seconds;
  uint64_t cycles;
  bool ok;
  // Cosim + self-composition counters for this row, merged in program order —
  // schedule-independent, so rows compare bit-identically across thread counts.
  telemetry::TelemetrySnapshot telemetry;
};

struct Pass {
  std::vector<Row> rows;
  double seconds = 0;
  uint64_t cycles = 0;
  bool ok = true;
};

Row RunOne(const hsm::App& app, soc::CpuKind cpu, int num_threads) {
  profiler::WorkSpan work_span("table4/row");
  if (work_span.active()) {
    work_span.Annotate("app=" + std::string(app.name()) +
                       " cpu=" + soc::CpuKindName(cpu));
  }
  hsm::HsmBuildOptions options;
  options.cpu = cpu;
  hsm::HsmSystem system(app, options);
  Rng rng(42);

  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd(app.command_size(), 0);
  cmd[0] = 2;  // Sign / Hash: the expensive operation.
  for (size_t i = 1; i < cmd.size() && i <= 32; i++) {
    cmd[i] = rng.Byte();
  }

  bench::Stopwatch timer;
  uint64_t cycles = 0;
  bool ok = true;

  // Functional-physical simulation (assembly-circuit synchronization). The
  // retirement-stream comparison is inherently per-command serial; parallelism comes
  // from running rows and self-composition obligations concurrently.
  auto cosim = knox2::CosimHandleStep(system, state, cmd);
  ok = ok && cosim.ok;
  if (!cosim.ok) {
    std::fprintf(stderr, "cosim failed: %s\n", cosim.divergence.c_str());
  }
  cycles += cosim.stats.cycles;

  // Self-composition non-leakage over a secret-differing state pair.
  Bytes variant = knox2::MakeSecretVariant(app, state, rng);
  knox2::SelfCompOptions selfcomp_options;
  selfcomp_options.num_threads = num_threads;
  auto selfcomp = knox2::CheckSelfComposition(system, state, variant, {cmd}, selfcomp_options);
  ok = ok && selfcomp.ok;
  if (!selfcomp.ok) {
    std::fprintf(stderr, "self-composition failed: %s\n", selfcomp.divergence.c_str());
  }
  cycles += 2 * selfcomp.cycles;  // Two circuit instances simulated.

  Row row{soc::CpuKindName(cpu), app.name(), timer.Seconds(), cycles, ok, {}};
  row.telemetry.Merge(cosim.telemetry);
  row.telemetry.Merge(selfcomp.telemetry);
  return row;
}

// One full Table 4 suite at the given thread count: the four app x platform rows are
// independent verification jobs scheduled on the pool.
Pass RunSuite(int num_threads) {
  struct Job {
    soc::CpuKind cpu;
    const hsm::App* app;
  };
  std::vector<Job> jobs;
  for (soc::CpuKind cpu : {soc::CpuKind::kIbexLite, soc::CpuKind::kPicoLite}) {
    jobs.push_back({cpu, &hsm::EcdsaApp()});
    jobs.push_back({cpu, &hsm::HasherApp()});
  }

  Pass pass;
  pass.rows.resize(jobs.size());
  bench::Stopwatch timer;
  ThreadPool pool(num_threads);
  ParallelFor(pool, jobs.size(), [&](size_t i) {
    pass.rows[i] = RunOne(*jobs[i].app, jobs[i].cpu, num_threads);
  });
  pass.seconds = timer.Seconds();
  for (const Row& row : pass.rows) {
    pass.cycles += row.cycles;
    pass.ok = pass.ok && row.ok;
  }
  return pass;
}

// The determinism guarantee, checked: the same checks at different thread counts
// must reach byte-identical outcomes (pass/fail and cycle counts per row).
bool SameOutcomes(const Pass& a, const Pass& b) {
  if (a.rows.size() != b.rows.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rows.size(); i++) {
    if (a.rows[i].ok != b.rows[i].ok || a.rows[i].cycles != b.rows[i].cycles ||
        !(a.rows[i].telemetry == b.rows[i].telemetry)) {
      return false;
    }
  }
  return true;
}

// One backend's 1-thread vs N-thread comparison.
struct Leg {
  std::string backend;
  Pass serial;
  Pass parallel;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 4: hardware verification effort and verification time (Knox2)");

  // Explicit --backend= restricts to one leg; otherwise both backends run so
  // BENCH_parallel.json records the scaling of each.
  const char* backend_flag = bench::FlagStr(argc, argv, "--backend", nullptr);
  std::vector<std::string> backends;
  if (backend_flag != nullptr) {
    backends = {bench::ApplyBackendFlag(argc, argv)};
  } else {
    backends = {"interp", "dbt"};
  }

  std::string base = std::string(PARFAIT_SOURCE_DIR) + "/";
  size_t emulator_loc = CountLoc(base + "src/knox2/emulator.cc");
  size_t proof_loc = CountLoc(base + "src/knox2/cosim.cc") +
                     CountLoc(base + "src/knox2/leakage.cc");
  std::printf("Emulator template: %zu LoC; Knox2 proof/checker code: %zu LoC; register/\n",
              emulator_loc, proof_loc);
  std::printf("pointer mapping: identity on the shared flat address map (figure 10).\n\n");

  std::string trace = bench::SetupTrace(argc, argv);
  bench::SetupProfile(argc, argv);
  int threads = ResolveNumThreads(bench::ThreadsFlag(argc, argv));
  bool compared = threads != 1;

  bool all_ok = true;
  bool all_identical = true;
  std::vector<Leg> legs;
  for (const std::string& backend : backends) {
    platform::ModelAsm::SetBackend(backend == "dbt" ? riscv::Machine::Backend::kDBT
                                                    : riscv::Machine::Backend::kInterpreter);
    std::printf("--- backend: %s ---\n", backend.c_str());
    Leg leg;
    leg.backend = backend;
    leg.serial = RunSuite(1);
    leg.parallel = compared ? RunSuite(threads) : leg.serial;
    leg.identical = SameOutcomes(leg.serial, leg.parallel);

    std::printf("%-10s %-18s %-12s %-16s %-12s %s\n", "Platform", "App", "Time (s)",
                "Cycles simulated", "Cycles/s", "Result");
    for (const Row& row : leg.parallel.rows) {
      std::printf("%-10s %-18s %-12.2f %-16llu %-12.0f %s\n", row.platform, row.app_name,
                  row.seconds, static_cast<unsigned long long>(row.cycles),
                  row.seconds > 0 ? row.cycles / row.seconds : 0.0,
                  row.ok ? "PASS" : "FAIL");
    }
    double serial_rate =
        leg.serial.seconds > 0 ? leg.serial.cycles / leg.serial.seconds : 0.0;
    double parallel_rate =
        leg.parallel.seconds > 0 ? leg.parallel.cycles / leg.parallel.seconds : 0.0;
    if (compared) {
      std::printf("\nParallel verification (%s): 1 thread %.2f s (%.0f cycles/s) vs %d "
                  "threads %.2f s (%.0f cycles/s) — %.2fx speedup; outcomes %s\n\n",
                  backend.c_str(), leg.serial.seconds, serial_rate, threads,
                  leg.parallel.seconds, parallel_rate,
                  leg.parallel.seconds > 0 ? leg.serial.seconds / leg.parallel.seconds : 0.0,
                  leg.identical ? "identical" : "DIVERGED (determinism bug!)");
    } else {
      std::printf("\nParallel verification: ran at 1 thread (pass --threads=N to measure "
                  "the 1-vs-N speedup)\n\n");
    }
    all_ok = all_ok && leg.parallel.ok;
    all_identical = all_identical && leg.identical;
    legs.push_back(std::move(leg));
  }

  // Unified telemetry artifact: each leg's serial-pass row snapshots merged in leg
  // then row order (identical at every --threads value and backend), plus wall-clock
  // phases for every pass.
  bench::TelemetryReport report("table4_hardware_verification", threads);
  report.SetBackend(backends.size() == 1 ? backends[0] : "interp+dbt");
  for (const Leg& leg : legs) {
    for (const Row& row : leg.serial.rows) {
      report.Merge(row.telemetry);
    }
  }
  for (const Leg& leg : legs) {
    report.AddPhase(leg.backend + " @1t", leg.serial.seconds);
    if (compared) {
      report.AddPhase(leg.backend + " @" + std::to_string(threads) + "t",
                      leg.parallel.seconds);
    }
  }

  // Machine-readable artifact for CI trend tracking and the parfait-prof perf gate:
  // one leg per backend, plus the runtime-only profile section when armed.
  if (FILE* json = std::fopen("BENCH_parallel.json", "w")) {
    std::string out = "{\"bench\":\"table4_hardware_verification\",\"meta\":" +
                      report.MetaJson() + ",\"legs\":[";
    for (size_t i = 0; i < legs.size(); i++) {
      const Leg& leg = legs[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"backend\":\"%s\",\"threads\":%d,\"serial_seconds\":%.4f,"
          "\"parallel_seconds\":%.4f,\"serial_cycles_per_sec\":%.1f,"
          "\"parallel_cycles_per_sec\":%.1f,\"speedup\":%.3f,\"outcomes_identical\":%s}",
          i > 0 ? "," : "", leg.backend.c_str(), threads, leg.serial.seconds,
          leg.parallel.seconds,
          leg.serial.seconds > 0 ? leg.serial.cycles / leg.serial.seconds : 0.0,
          leg.parallel.seconds > 0 ? leg.parallel.cycles / leg.parallel.seconds : 0.0,
          leg.parallel.seconds > 0 ? leg.serial.seconds / leg.parallel.seconds : 0.0,
          leg.identical ? "true" : "false");
      out += buf;
    }
    out += "]";
    if (profiler::Profiler::Global().enabled()) {
      out += ",\"profile\":" + prof::ProfileJson(profiler::Profiler::Global());
    }
    out += "}\n";
    std::fwrite(out.data(), 1, out.size(), json);
    std::fclose(json);
    std::printf("Wrote BENCH_parallel.json\n");
  }

  report.Write(bench::FlagStr(argc, argv, "--json", "BENCH_telemetry.json"));
  bench::FinishTrace(trace);

  bench::PaperNote(
      "Ibex: ECDSA 80 h at 304 cycles/s, hasher 0.10 h; PicoRV32: ECDSA 100 h at 671 "
      "cycles/s, hasher 0.14 h — shape: ECDSA orders of magnitude costlier than the "
      "hasher; PicoRV32 higher cycles/s yet longer wall-clock (more cycles per op)");
  return (all_ok && all_identical) ? 0 : 1;
}
