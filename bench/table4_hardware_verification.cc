// Table 4 reproduction: hardware verification effort and verification time for all
// four HSMs (two apps x two platforms). For each combination, Knox2 runs the
// assembly-circuit co-simulation for one representative command plus the
// self-composition leakage check; the table reports wall-clock time, simulated cycles,
// and throughput (cycles per second of verification) — the paper's key shape is that
// the simpler PicoRV32-style core verifies at *higher* cycles/s but needs *more*
// cycles (and thus more wall-clock) per operation.
//
// The suite is scheduled as fine-grained *work units* (src/knox2/units.h): each row's
// handle() invocation is segmented into ~--unit-instr instruction slices for both the
// co-simulation and the self-composition pair, and every slice is an independently
// runnable, independently seeded obligation with a global ordinal. The same unit list
// drives three modes:
//
//   --threads=N       schedules all units of all rows across N pool lanes; when N != 1
//                     the suite runs at 1 thread and again at N, verifies the folded
//                     row outcomes (pass/fail, cycles, telemetry) are byte-identical,
//                     and emits BENCH_parallel.json with the measured speedup.
//   --shards=K/M      runs only the units with ordinal % M == K-1 and writes their
//                     records to --shard-out (default BENCH_shard_K_of_M.json).
//                     `parfait-prof merge` combines M shard files into a report that
//                     is byte-identical to the unsharded run's BENCH_table4_report.json
//                     — every process plans all rows (planning is deterministic), so
//                     shards agree on the ordinal space without coordination.
//   --unit-instr=N    slice size (0 = classic monolithic checkers; short commands fall
//                     back to one monolithic unit automatically).
//   --app=F           restricts rows to one app (ecdsa | hasher | all). Row indices
//                     and inputs stay those of the full table, so shards and filters
//                     compose deterministically.
//
// Without an explicit --backend= the unsharded suite runs one leg per execution
// backend (interp, dbt); shard mode runs exactly one backend (--backend, default
// interp) so all shards of a run agree. --profile=1 (or a --trace= run) embeds the
// work-unit attribution, lane utilization, and contention-probe "profile" section
// that `parfait-prof report` renders.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/knox2/cosim.h"
#include "src/knox2/leakage.h"
#include "src/knox2/units.h"
#include "src/support/loc.h"
#include "src/support/parallel.h"
#include "src/support/profiler.h"
#include "src/support/rng.h"
#include "src/support/shard.h"

using namespace parfait;

namespace {

constexpr int kTableRows = 4;

// One row of the full table, planned: system, deterministic inputs, and the unit
// plans for its co-simulation and self-composition obligations. Planning never
// fails the row — a command that cannot be sliced (too short, undef-dependent
// control flow) simply keeps one monolithic unit per checker.
struct RowPlan {
  int index = 0;  // Absolute row index in the full 4-row table, filter-independent.
  soc::CpuKind cpu = soc::CpuKind::kIbexLite;
  const hsm::App* app = nullptr;
  std::string label;  // "IbexLite/ecdsa-p256" — the row key in shard records.
  std::unique_ptr<hsm::HsmSystem> system;
  Bytes state;
  Bytes cmd;
  Bytes variant;
  knox2::HandlePlan cosim_plan;    // For `state`.
  knox2::HandlePlan variant_plan;  // For `variant`; paired when aligned.
  bool cosim_sliced = false;
  bool selfcomp_sliced = false;
  size_t cosim_units = 1;
  size_t selfcomp_units = 1;
};

// One schedulable obligation: unit k of a row's cosim or selfcomp check. The
// ordinal is the unit's position in the deterministic global enumeration — the
// contract that lets shards partition work by `ordinal % M` alone.
struct UnitDesc {
  uint64_t ordinal = 0;
  const RowPlan* row = nullptr;
  bool selfcomp = false;
  size_t k = 0;
};

bool AppSelected(const std::string& filter, const hsm::App& app) {
  if (filter == "all") {
    return true;
  }
  // Flag values are lowercase tokens; app names are display strings ("ECDSA
  // signer", "Password hasher"), so match case-insensitively on a substring.
  std::string name(app.name());
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name.find(filter) != std::string::npos;
}

// Plans every selected row. Deterministic in (filter, unit_instructions, backend):
// row inputs derive from SplitSeed(42, absolute row index), and PlanHandleUnits is
// itself deterministic — every shard reproduces the same plans and ordinals.
std::vector<RowPlan> PlanRows(const std::string& app_filter, uint64_t unit_instructions) {
  std::vector<RowPlan> rows;
  int index = 0;
  for (soc::CpuKind cpu : {soc::CpuKind::kIbexLite, soc::CpuKind::kPicoLite}) {
    for (const hsm::App* app : {&hsm::EcdsaApp(), &hsm::HasherApp()}) {
      int row_index = index++;
      if (!AppSelected(app_filter, *app)) {
        continue;
      }
      RowPlan row;
      row.index = row_index;
      row.cpu = cpu;
      row.app = app;
      row.label = std::string(soc::CpuKindName(cpu)) + "/" + app->name();

      Rng rng(SplitSeed(42, static_cast<uint64_t>(row_index)));
      row.state = rng.RandomBytes(app->state_size());
      row.cmd = Bytes(app->command_size(), 0);
      row.cmd[0] = 2;  // Sign / Hash: the expensive operation.
      for (size_t i = 1; i < row.cmd.size() && i <= 32; i++) {
        row.cmd[i] = rng.Byte();
      }
      row.variant = knox2::MakeSecretVariant(*app, row.state, rng);

      hsm::HsmBuildOptions options;
      options.cpu = cpu;
      row.system = std::make_unique<hsm::HsmSystem>(*app, options);

      if (unit_instructions > 0) {
        profiler::WorkSpan span("knox2/plan");
        if (span.active()) {
          span.Annotate("row=" + row.label);
        }
        row.cosim_plan =
            knox2::PlanHandleUnits(*row.system, row.state, row.cmd, unit_instructions);
        row.cosim_sliced = row.cosim_plan.ok && row.cosim_plan.num_units() > 1;
        if (row.cosim_sliced) {
          row.variant_plan = knox2::PlanHandleUnits(*row.system, row.variant, row.cmd,
                                                    unit_instructions);
          row.selfcomp_sliced = row.variant_plan.ok &&
                                knox2::PlansAligned(row.cosim_plan, row.variant_plan);
        }
      }
      row.cosim_units = row.cosim_sliced ? row.cosim_plan.num_units() : 1;
      row.selfcomp_units = row.selfcomp_sliced ? row.cosim_plan.num_units() : 1;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// Row-major global enumeration: each row contributes its cosim units then its
// selfcomp units. Excluded rows contribute nothing, so ordinals stay contiguous.
std::vector<UnitDesc> EnumerateUnits(const std::vector<RowPlan>& rows) {
  std::vector<UnitDesc> units;
  uint64_t ordinal = 0;
  for (const RowPlan& row : rows) {
    for (size_t k = 0; k < row.cosim_units; k++) {
      units.push_back({ordinal++, &row, false, k});
    }
    for (size_t k = 0; k < row.selfcomp_units; k++) {
      units.push_back({ordinal++, &row, true, k});
    }
  }
  return units;
}

// Runs one work unit to a shard record. Everything in the record is a function of
// the unit alone (deterministic inputs, no timing), which is what makes records
// mergeable across thread counts and processes.
shard::UnitRecord RunUnit(const UnitDesc& unit) {
  const RowPlan& row = *unit.row;
  shard::UnitRecord record;
  record.ordinal = unit.ordinal;
  record.row = static_cast<uint32_t>(row.index);
  record.row_label = row.label;
  if (!unit.selfcomp) {
    record.kind = "cosim";
    if (row.cosim_sliced) {
      record.label = "unit " + std::to_string(unit.k) + "/" +
                     std::to_string(row.cosim_units);
      auto r = knox2::RunCosimUnit(*row.system, row.state, row.cmd, row.cosim_plan,
                                   unit.k, knox2::CosimOptions{});
      record.ok = r.ok;
      record.divergence = r.divergence;
      record.cycles = r.stats.cycles;
      record.telemetry = knox2::CosimUnitTelemetry(r, unit.k);
    } else {
      record.label = "monolithic";
      auto r = knox2::CosimHandleStep(*row.system, row.state, row.cmd);
      record.ok = r.ok;
      record.divergence = r.divergence;
      record.cycles = r.stats.cycles;
      record.telemetry = r.telemetry;
    }
    if (!record.ok) {
      std::fprintf(stderr, "cosim failed (%s, %s): %s\n", row.label.c_str(),
                   record.label.c_str(), record.divergence.c_str());
    }
  } else {
    record.kind = "selfcomp";
    if (row.selfcomp_sliced) {
      record.label = "unit " + std::to_string(unit.k) + "/" +
                     std::to_string(row.selfcomp_units);
      auto r = knox2::RunSelfCompUnit(*row.system, row.state, row.variant, row.cmd,
                                      row.cosim_plan, row.variant_plan, unit.k,
                                      knox2::SelfCompOptions{}.max_cycles_per_command);
      record.ok = r.ok;
      record.divergence = r.divergence;
      record.cycles = 2 * r.cycles;  // Two circuit instances simulated.
      record.telemetry = knox2::SelfCompUnitTelemetry(r, unit.k);
    } else {
      record.label = "monolithic";
      knox2::SelfCompOptions options;
      options.num_threads = 1;  // Unit-level parallelism happens above, not inside.
      auto r = knox2::CheckSelfComposition(*row.system, row.state, row.variant,
                                           {row.cmd}, options);
      record.ok = r.ok;
      record.divergence = r.divergence;
      record.cycles = 2 * r.cycles;
      record.telemetry = r.telemetry;
    }
    if (!record.ok) {
      std::fprintf(stderr, "self-composition failed (%s, %s): %s\n", row.label.c_str(),
                   record.label.c_str(), record.divergence.c_str());
    }
  }
  return record;
}

// One scheduling pass: run this shard's units on `num_threads` lanes and fold them
// into row outcomes. Records come out ordinal-ascending (the owned subset preserves
// enumeration order), so FoldRows settles each row's lowest failing ordinal.
struct Pass {
  std::vector<shard::UnitRecord> records;
  std::vector<shard::RowOutcome> rows;
  std::array<double, kTableRows> row_seconds{};  // Thread time, by absolute row index.
  double seconds = 0;
  uint64_t cycles = 0;
  bool ok = true;
};

Pass RunPass(const std::vector<UnitDesc>& units, const shard::ShardSpec& spec,
             int num_threads) {
  std::vector<const UnitDesc*> owned;
  for (const UnitDesc& unit : units) {
    if (spec.Owns(unit.ordinal)) {
      owned.push_back(&unit);
    }
  }
  Pass pass;
  pass.records.resize(owned.size());
  std::array<std::atomic<uint64_t>, kTableRows> row_ns{};
  bench::Stopwatch timer;
  {
    ThreadPool pool(num_threads);
    ParallelFor(pool, owned.size(), [&](size_t i) {
      auto start = std::chrono::steady_clock::now();
      pass.records[i] = RunUnit(*owned[i]);
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      row_ns[owned[i]->row->index].fetch_add(static_cast<uint64_t>(ns),
                                             std::memory_order_relaxed);
    });
  }  // Pool teardown folds lane stats into telemetry/profiler.
  pass.seconds = timer.Seconds();
  pass.rows = shard::FoldRows(pass.records);
  for (const shard::RowOutcome& row : pass.rows) {
    pass.cycles += row.cycles;
    pass.ok = pass.ok && row.ok;
  }
  for (int i = 0; i < kTableRows; i++) {
    pass.row_seconds[i] = static_cast<double>(row_ns[i].load()) * 1e-9;
  }
  return pass;
}

// The determinism guarantee, checked: the same checks at different thread counts
// must fold to byte-identical row outcomes (pass/fail, cycles, units, telemetry).
bool SameOutcomes(const Pass& a, const Pass& b) {
  if (a.rows.size() != b.rows.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rows.size(); i++) {
    if (a.rows[i].ok != b.rows[i].ok || a.rows[i].cycles != b.rows[i].cycles ||
        a.rows[i].units != b.rows[i].units ||
        !(a.rows[i].telemetry == b.rows[i].telemetry)) {
      return false;
    }
  }
  return true;
}

void PrintRows(const Pass& pass) {
  std::printf("%-22s %-12s %-16s %-12s %-7s %s\n", "Platform/App", "Time (s)",
              "Cycles simulated", "Cycles/s", "Units", "Result");
  for (const shard::RowOutcome& row : pass.rows) {
    double seconds = pass.row_seconds[row.row];
    std::printf("%-22s %-12.2f %-16llu %-12.0f %-7llu %s\n", row.label.c_str(), seconds,
                static_cast<unsigned long long>(row.cycles),
                seconds > 0 ? row.cycles / seconds : 0.0,
                static_cast<unsigned long long>(row.units), row.ok ? "PASS" : "FAIL");
  }
}

// One backend's 1-thread vs N-thread comparison.
struct Leg {
  std::string backend;
  Pass serial;
  Pass parallel;
  double plan_seconds = 0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 4: hardware verification effort and verification time (Knox2)");

  std::string shard_error;
  auto spec = shard::ParseShardSpec(bench::FlagStr(argc, argv, "--shards", "1/1"),
                                    &shard_error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "%s\n", shard_error.c_str());
    return 2;
  }
  int unit_instr_flag = bench::FlagInt(argc, argv, "--unit-instr", 150'000);
  uint64_t unit_instructions = unit_instr_flag < 0 ? 0 : static_cast<uint64_t>(unit_instr_flag);
  std::string app_filter = bench::FlagStr(argc, argv, "--app", "all");
  if (app_filter != "all" && app_filter != "ecdsa" && app_filter != "hasher") {
    std::fprintf(stderr, "--app=%s is not ecdsa|hasher|all\n", app_filter.c_str());
    return 2;
  }

  // Explicit --backend= restricts to one leg; otherwise both backends run so
  // BENCH_parallel.json records the scaling of each. Shard mode always runs exactly
  // one backend — every shard of a run must agree on the unit enumeration.
  const char* backend_flag = bench::FlagStr(argc, argv, "--backend", nullptr);
  std::vector<std::string> backends;
  if (backend_flag != nullptr) {
    backends = {bench::ApplyBackendFlag(argc, argv)};
  } else if (spec->active()) {
    platform::ModelAsm::SetBackend(riscv::Machine::Backend::kInterpreter);
    backends = {"interp"};
  } else {
    backends = {"interp", "dbt"};
  }

  std::string base = std::string(PARFAIT_SOURCE_DIR) + "/";
  size_t emulator_loc = CountLoc(base + "src/knox2/emulator.cc");
  size_t proof_loc = CountLoc(base + "src/knox2/cosim.cc") +
                     CountLoc(base + "src/knox2/leakage.cc");
  std::printf("Emulator template: %zu LoC; Knox2 proof/checker code: %zu LoC; register/\n",
              emulator_loc, proof_loc);
  std::printf("pointer mapping: identity on the shared flat address map (figure 10).\n\n");

  std::string trace = bench::SetupTrace(argc, argv);
  bench::SetupProfile(argc, argv);
  int threads = ResolveNumThreads(bench::ThreadsFlag(argc, argv));
  bool compared = !spec->active() && threads != 1;

  bool all_ok = true;
  bool all_identical = true;
  std::vector<Leg> legs;
  std::vector<RowPlan> row_plans;  // Last leg's plans (kept alive for reporting).
  uint64_t total_units = 0;
  for (const std::string& backend : backends) {
    platform::ModelAsm::SetBackend(backend == "dbt" ? riscv::Machine::Backend::kDBT
                                                    : riscv::Machine::Backend::kInterpreter);
    std::printf("--- backend: %s ---\n", backend.c_str());
    Leg leg;
    leg.backend = backend;

    bench::Stopwatch plan_timer;
    row_plans = PlanRows(app_filter, unit_instructions);
    std::vector<UnitDesc> units = EnumerateUnits(row_plans);
    leg.plan_seconds = plan_timer.Seconds();
    total_units = units.size();
    std::printf("planned %zu work units across %zu rows (%.2f s, --unit-instr=%llu)\n",
                units.size(), row_plans.size(), leg.plan_seconds,
                static_cast<unsigned long long>(unit_instructions));

    if (spec->active()) {
      leg.parallel = RunPass(units, *spec, threads);
      leg.serial = leg.parallel;
      PrintRows(leg.parallel);
      std::printf("\nShard %d/%d: ran %zu of %zu units at %d threads (%.2f s) — rows "
                  "above are partial; merge all shards with `parfait-prof merge`\n\n",
                  spec->index, spec->count, leg.parallel.records.size(), units.size(),
                  threads, leg.parallel.seconds);
    } else {
      leg.serial = RunPass(units, *spec, 1);
      leg.parallel = compared ? RunPass(units, *spec, threads) : leg.serial;
      leg.identical = SameOutcomes(leg.serial, leg.parallel);
      // Row times from the serial pass: thread time == wall time there, so the
      // table reads as per-row verification cost (the parallel pass's thread time
      // inflates under oversubscription).
      PrintRows(leg.serial);
      double serial_rate =
          leg.serial.seconds > 0 ? leg.serial.cycles / leg.serial.seconds : 0.0;
      double parallel_rate =
          leg.parallel.seconds > 0 ? leg.parallel.cycles / leg.parallel.seconds : 0.0;
      if (compared) {
        std::printf("\nParallel verification (%s): 1 thread %.2f s (%.0f cycles/s) vs %d "
                    "threads %.2f s (%.0f cycles/s) — %.2fx speedup; outcomes %s\n\n",
                    backend.c_str(), leg.serial.seconds, serial_rate, threads,
                    leg.parallel.seconds, parallel_rate,
                    leg.parallel.seconds > 0 ? leg.serial.seconds / leg.parallel.seconds
                                             : 0.0,
                    leg.identical ? "identical" : "DIVERGED (determinism bug!)");
      } else {
        std::printf("\nParallel verification: ran at 1 thread (pass --threads=N to "
                    "measure the 1-vs-N speedup)\n\n");
      }
    }
    all_ok = all_ok && leg.parallel.ok;
    all_identical = all_identical && leg.identical;
    legs.push_back(std::move(leg));
  }

  // Unified telemetry artifact: each leg's reference-pass row snapshots merged in
  // leg then row order (identical at every --threads value and backend), plus
  // wall-clock phases for every pass.
  bench::TelemetryReport report("table4_hardware_verification", threads);
  report.SetBackend(backends.size() == 1 ? backends[0] : "interp+dbt");
  for (const Leg& leg : legs) {
    for (const shard::RowOutcome& row : leg.serial.rows) {
      report.Merge(row.telemetry);
    }
  }
  for (const Leg& leg : legs) {
    report.AddPhase(leg.backend + " plan", leg.plan_seconds);
    report.AddPhase(leg.backend + " @1t", leg.serial.seconds);
    if (compared) {
      report.AddPhase(leg.backend + " @" + std::to_string(threads) + "t",
                      leg.parallel.seconds);
    }
  }

  if (spec->active()) {
    // Shard artifact: this process's unit records, to be merged by parfait-prof.
    std::string default_out = "BENCH_shard_" + std::to_string(spec->index) + "_of_" +
                              std::to_string(spec->count) + ".json";
    std::string out_path = bench::FlagStr(argc, argv, "--shard-out", default_out.c_str());
    if (FILE* out = std::fopen(out_path.c_str(), "w")) {
      std::string json = shard::ShardFileJson("table4_hardware_verification", *spec,
                                              report.MetaJson(), legs.back().parallel.records);
      std::fwrite(json.data(), 1, json.size(), out);
      std::fclose(out);
      std::printf("Wrote %s\n", out_path.c_str());
    }
  } else {
    // Machine-readable artifact for CI trend tracking and the parfait-prof perf
    // gate: one leg per backend, plus the runtime-only profile section when armed.
    if (FILE* json = std::fopen("BENCH_parallel.json", "w")) {
      std::string out = "{\"bench\":\"table4_hardware_verification\",\"meta\":" +
                        report.MetaJson() + ",\"legs\":[";
      for (size_t i = 0; i < legs.size(); i++) {
        const Leg& leg = legs[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"backend\":\"%s\",\"threads\":%d,\"serial_seconds\":%.4f,"
            "\"parallel_seconds\":%.4f,\"serial_cycles_per_sec\":%.1f,"
            "\"parallel_cycles_per_sec\":%.1f,\"speedup\":%.3f,\"outcomes_identical\":%s}",
            i > 0 ? "," : "", leg.backend.c_str(), threads, leg.serial.seconds,
            leg.parallel.seconds,
            leg.serial.seconds > 0 ? leg.serial.cycles / leg.serial.seconds : 0.0,
            leg.parallel.seconds > 0 ? leg.parallel.cycles / leg.parallel.seconds : 0.0,
            leg.parallel.seconds > 0 ? leg.serial.seconds / leg.parallel.seconds : 0.0,
            leg.identical ? "true" : "false");
        out += buf;
      }
      out += "]";
      if (profiler::Profiler::Global().enabled()) {
        out += ",\"profile\":" + prof::ProfileJson(profiler::Profiler::Global());
      }
      out += "}\n";
      std::fwrite(out.data(), 1, out.size(), json);
      std::fclose(json);
      std::printf("Wrote BENCH_parallel.json (%llu work units)\n",
                  static_cast<unsigned long long>(total_units));
    }
    if (backends.size() == 1) {
      // Canonical row report for the single-backend run: exactly what
      // `parfait-prof merge` reconstructs from this configuration's shard files.
      const char* report_path =
          bench::FlagStr(argc, argv, "--report-out", "BENCH_table4_report.json");
      if (FILE* out = std::fopen(report_path, "w")) {
        std::string json = shard::MergedReportJson("table4_hardware_verification",
                                                   legs.back().serial.rows);
        std::fwrite(json.data(), 1, json.size(), out);
        std::fclose(out);
        std::printf("Wrote %s\n", report_path);
      }
      // A 1/1 shard file on request lets tests merge-compare without a second run.
      const char* shard_out = bench::FlagStr(argc, argv, "--shard-out", nullptr);
      if (shard_out != nullptr) {
        if (FILE* out = std::fopen(shard_out, "w")) {
          std::string json =
              shard::ShardFileJson("table4_hardware_verification", *spec,
                                   report.MetaJson(), legs.back().serial.records);
          std::fwrite(json.data(), 1, json.size(), out);
          std::fclose(out);
          std::printf("Wrote %s\n", shard_out);
        }
      }
    }
  }

  report.Write(bench::FlagStr(argc, argv, "--json", "BENCH_telemetry.json"));
  bench::FinishTrace(trace);

  bench::PaperNote(
      "Ibex: ECDSA 80 h at 304 cycles/s, hasher 0.10 h; PicoRV32: ECDSA 100 h at 671 "
      "cycles/s, hasher 0.14 h — shape: ECDSA orders of magnitude costlier than the "
      "hasher; PicoRV32 higher cycles/s yet longer wall-clock (more cycles per op)");
  return (all_ok && all_identical) ? 0 : 1;
}
