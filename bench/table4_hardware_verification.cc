// Table 4 reproduction: hardware verification effort and verification time for all
// four HSMs (two apps x two platforms). For each combination, Knox2 runs the
// assembly-circuit co-simulation for one representative command plus the
// self-composition leakage check; the table reports wall-clock time, simulated cycles,
// and throughput (cycles per second of verification) — the paper's key shape is that
// the simpler PicoRV32-style core verifies at *higher* cycles/s but needs *more*
// cycles (and thus more wall-clock) per operation.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/knox2/cosim.h"
#include "src/knox2/leakage.h"
#include "src/support/loc.h"
#include "src/support/rng.h"

using namespace parfait;

namespace {

struct Row {
  const char* platform;
  const char* app_name;
  double seconds;
  uint64_t cycles;
  bool ok;
};

Row RunOne(const hsm::App& app, soc::CpuKind cpu) {
  hsm::HsmBuildOptions options;
  options.cpu = cpu;
  hsm::HsmSystem system(app, options);
  Rng rng(42);

  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd(app.command_size(), 0);
  cmd[0] = 2;  // Sign / Hash: the expensive operation.
  for (size_t i = 1; i < cmd.size() && i <= 32; i++) {
    cmd[i] = rng.Byte();
  }

  bench::Stopwatch timer;
  uint64_t cycles = 0;
  bool ok = true;

  // Functional-physical simulation (assembly-circuit synchronization).
  auto cosim = knox2::CosimHandleStep(system, state, cmd);
  ok = ok && cosim.ok;
  if (!cosim.ok) {
    std::fprintf(stderr, "cosim failed: %s\n", cosim.divergence.c_str());
  }
  cycles += cosim.stats.cycles;

  // Self-composition non-leakage over a secret-differing state pair.
  Bytes variant = knox2::MakeSecretVariant(app, state, rng);
  auto selfcomp = knox2::CheckSelfComposition(system, state, variant, {cmd});
  ok = ok && selfcomp.ok;
  if (!selfcomp.ok) {
    std::fprintf(stderr, "self-composition failed: %s\n", selfcomp.divergence.c_str());
  }
  cycles += 2 * selfcomp.cycles;  // Two circuit instances simulated.

  return Row{soc::CpuKindName(cpu), app.name(), timer.Seconds(), cycles, ok};
}

}  // namespace

int main() {
  bench::Header("Table 4: hardware verification effort and verification time (Knox2)");

  std::string base = std::string(PARFAIT_SOURCE_DIR) + "/";
  size_t emulator_loc = CountLoc(base + "src/knox2/emulator.cc");
  size_t proof_loc = CountLoc(base + "src/knox2/cosim.cc") +
                     CountLoc(base + "src/knox2/leakage.cc");
  std::printf("Emulator template: %zu LoC; Knox2 proof/checker code: %zu LoC; register/\n",
              emulator_loc, proof_loc);
  std::printf("pointer mapping: identity on the shared flat address map (figure 10).\n\n");

  std::printf("%-10s %-18s %-12s %-16s %-12s %s\n", "Platform", "App", "Time (s)",
              "Cycles simulated", "Cycles/s", "Result");

  std::vector<Row> rows;
  for (soc::CpuKind cpu : {soc::CpuKind::kIbexLite, soc::CpuKind::kPicoLite}) {
    rows.push_back(RunOne(hsm::EcdsaApp(), cpu));
    rows.push_back(RunOne(hsm::HasherApp(), cpu));
  }
  for (const Row& row : rows) {
    std::printf("%-10s %-18s %-12.2f %-16llu %-12.0f %s\n", row.platform, row.app_name,
                row.seconds, static_cast<unsigned long long>(row.cycles),
                row.seconds > 0 ? row.cycles / row.seconds : 0.0,
                row.ok ? "PASS" : "FAIL");
  }

  bench::PaperNote(
      "Ibex: ECDSA 80 h at 304 cycles/s, hasher 0.10 h; PicoRV32: ECDSA 100 h at 671 "
      "cycles/s, hasher 0.14 h — shape: ECDSA orders of magnitude costlier than the "
      "hasher; PicoRV32 higher cycles/s yet longer wall-clock (more cycles per op)");
  bool all_ok = true;
  for (const Row& row : rows) {
    all_ok = all_ok && row.ok;
  }
  return all_ok ? 0 : 1;
}
