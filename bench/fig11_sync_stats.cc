// Figure 11 reproduction: Knox2 synchronization points by category. The paper's table
// maps CompCert Asm instruction classes to sync actions (registers, buffers, or both);
// this benchmark reports how often each class of sync point fired during real
// co-simulation runs, for each app x platform.
//
// --threads=N (0 = all hardware threads) runs the four app x platform co-simulations
// concurrently; rows print in a fixed order and each run is deterministic, so the
// output is identical at every thread count. --trace=<path> (or PARFAIT_TRACE)
// captures a Chrome trace; --json=<path> overrides the BENCH_telemetry.json location.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/knox2/cosim.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"

using namespace parfait;

int main(int argc, char** argv) {
  bench::Header("Figure 11: assembly-circuit synchronization points by category");

  struct Job {
    soc::CpuKind cpu;
    const hsm::App* app;
    knox2::CosimResult result;
  };
  std::vector<Job> jobs;
  for (soc::CpuKind cpu : {soc::CpuKind::kIbexLite, soc::CpuKind::kPicoLite}) {
    for (const hsm::App* app : {&hsm::HasherApp(), &hsm::EcdsaApp()}) {
      jobs.push_back({cpu, app, {}});
    }
  }

  std::string trace = bench::SetupTrace(argc, argv);
  int threads = bench::ThreadsFlag(argc, argv);
  bench::Stopwatch timer;
  ThreadPool pool(threads);
  ParallelFor(pool, jobs.size(), [&](size_t i) {
    Job& job = jobs[i];
    hsm::HsmBuildOptions options;
    options.cpu = job.cpu;
    hsm::HsmSystem system(*job.app, options);
    Rng rng(9);
    Bytes state = rng.RandomBytes(job.app->state_size());
    Bytes cmd(job.app->command_size(), 0);
    cmd[0] = 2;
    for (size_t k = 1; k < cmd.size() && k <= 32; k++) {
      cmd[k] = rng.Byte();
    }
    job.result = knox2::CosimHandleStep(system, state, cmd);
  });

  std::printf("%-10s %-18s %-13s %-11s %-11s %-11s %-13s %-10s\n", "Platform", "App",
              "Instructions", "BranchSync", "CallSync", "Periodic", "RegsCompared",
              "UndefSkip");
  bool all_ok = true;
  for (const Job& job : jobs) {
    all_ok = all_ok && job.result.ok;
    const auto& s = job.result.stats;
    std::printf("%-10s %-18s %-13llu %-11llu %-11llu %-11llu %-13llu %-10llu %s\n",
                soc::CpuKindName(job.cpu), job.app->name(),
                static_cast<unsigned long long>(s.instructions),
                static_cast<unsigned long long>(s.branch_syncs),
                static_cast<unsigned long long>(s.call_syncs),
                static_cast<unsigned long long>(s.periodic_syncs),
                static_cast<unsigned long long>(s.registers_compared),
                static_cast<unsigned long long>(s.undef_skipped),
                job.result.ok ? "" : ("FAIL: " + job.result.divergence).c_str());
  }
  bench::PaperNote(
      "sync at branches (registers), calls/frame boundaries (registers + buffers), and "
      "periodic fallbacks; undef registers are skipped ('leave the circuit register "
      "as-is')");

  // Job snapshots merged in job order — identical at every --threads value.
  bench::TelemetryReport report("fig11_sync_stats", threads);
  for (const Job& job : jobs) {
    report.Merge(job.result.telemetry);
    if (job.result.evidence.has_value()) {
      report.AddEvidence(*job.result.evidence);
    }
  }
  report.AddPhase("cosim suite", timer.Seconds());
  report.Write(bench::FlagStr(argc, argv, "--json", "BENCH_telemetry.json"));
  bench::FinishTrace(trace);
  return all_ok ? 0 : 1;
}
