// Figure 11 reproduction: Knox2 synchronization points by category. The paper's table
// maps CompCert Asm instruction classes to sync actions (registers, buffers, or both);
// this benchmark reports how often each class of sync point fired during real
// co-simulation runs, for each app x platform.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/knox2/cosim.h"
#include "src/support/rng.h"

using namespace parfait;

int main() {
  bench::Header("Figure 11: assembly-circuit synchronization points by category");

  std::printf("%-10s %-18s %-13s %-11s %-11s %-11s %-13s %-10s\n", "Platform", "App",
              "Instructions", "BranchSync", "CallSync", "Periodic", "RegsCompared",
              "UndefSkip");
  bool all_ok = true;
  for (soc::CpuKind cpu : {soc::CpuKind::kIbexLite, soc::CpuKind::kPicoLite}) {
    for (const hsm::App* app : {&hsm::HasherApp(), &hsm::EcdsaApp()}) {
      hsm::HsmBuildOptions options;
      options.cpu = cpu;
      hsm::HsmSystem system(*app, options);
      Rng rng(9);
      Bytes state = rng.RandomBytes(app->state_size());
      Bytes cmd(app->command_size(), 0);
      cmd[0] = 2;
      for (size_t i = 1; i < cmd.size() && i <= 32; i++) {
        cmd[i] = rng.Byte();
      }
      auto result = knox2::CosimHandleStep(system, state, cmd);
      all_ok = all_ok && result.ok;
      const auto& s = result.stats;
      std::printf("%-10s %-18s %-13llu %-11llu %-11llu %-11llu %-13llu %-10llu %s\n",
                  soc::CpuKindName(cpu), app->name(),
                  static_cast<unsigned long long>(s.instructions),
                  static_cast<unsigned long long>(s.branch_syncs),
                  static_cast<unsigned long long>(s.call_syncs),
                  static_cast<unsigned long long>(s.periodic_syncs),
                  static_cast<unsigned long long>(s.registers_compared),
                  static_cast<unsigned long long>(s.undef_skipped),
                  result.ok ? "" : ("FAIL: " + result.divergence).c_str());
    }
  }
  bench::PaperNote(
      "sync at branches (registers), calls/frame boundaries (registers + buffers), and "
      "periodic fallbacks; undef registers are skipped ('leave the circuit register "
      "as-is')");
  return all_ok ? 0 : 1;
}
