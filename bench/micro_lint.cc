// Microbenchmark for the static leakage lint: abstract-interpretation throughput
// (instructions analyzed per second of wall clock) and time-to-fixpoint for both
// case-study firmware images.
//
// Emitted as BENCH_lint.json so the analyzer's cost is recorded next to its
// coverage numbers:
//   {"bench":"micro_lint",
//    "apps":[{"app":"hasher","instrs_analyzed":...,"fixpoint_iters":...,
//             "findings":0,"contract_checks":...,"seconds_to_fixpoint":...,
//             "instr_per_s":...},...]}
//
// contract_checks counts the per-instruction checks the leakage contract armed
// (src/contract/contract.h) — the dispatch cost of contract-table-driven checks
// versus the old hardcoded policy is contract_checks/instrs_analyzed.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/lint.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"

namespace parfait {
namespace {

const hsm::HsmSystem& SystemFor(const std::string& app) {
  static hsm::HsmSystem* hasher = new hsm::HsmSystem(hsm::HasherApp(), hsm::HsmBuildOptions{});
  static hsm::HsmSystem* ecdsa = new hsm::HsmSystem(hsm::EcdsaApp(), hsm::HsmBuildOptions{});
  return app == "hasher" ? *hasher : *ecdsa;
}

// One full lint run to fixpoint per iteration. The per-iteration wall clock is the
// seconds-to-fixpoint figure; the instrs_analyzed rate counter is the throughput
// figure (abstract instructions executed, i.e. re-analysis under the worklist
// counts — that is the quantity the analyzer actually pays for).
void RunLintBench(benchmark::State& state, const std::string& app) {
  const hsm::HsmSystem& system = SystemFor(app);
  uint64_t instrs = 0;
  uint64_t iters = 0;
  uint64_t findings = 0;
  uint64_t contract_checks = 0;
  for (auto _ : state) {
    analysis::LintReport report = analysis::RunLintForSystem(system);
    benchmark::DoNotOptimize(report.ok);
    instrs += report.telemetry.CounterValue("lint/instrs_analyzed");
    iters += report.telemetry.CounterValue("lint/fixpoint_iters");
    contract_checks += report.telemetry.CounterValue("lint/contract_checks");
    findings = report.findings.size();
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instrs), benchmark::Counter::kIsRate);
  state.counters["instrs_analyzed"] = benchmark::Counter(
      state.iterations() > 0 ? static_cast<double>(instrs) / static_cast<double>(state.iterations())
                             : 0);
  state.counters["fixpoint_iters"] = benchmark::Counter(
      state.iterations() > 0 ? static_cast<double>(iters) / static_cast<double>(state.iterations())
                             : 0);
  state.counters["findings"] = benchmark::Counter(static_cast<double>(findings));
  state.counters["contract_checks"] = benchmark::Counter(
      state.iterations() > 0
          ? static_cast<double>(contract_checks) / static_cast<double>(state.iterations())
          : 0);
  state.SetLabel(app);
}

void BM_LintHasher(benchmark::State& state) { RunLintBench(state, "hasher"); }
BENCHMARK(BM_LintHasher)->Unit(benchmark::kMillisecond);

void BM_LintEcdsa(benchmark::State& state) { RunLintBench(state, "ecdsa"); }
BENCHMARK(BM_LintEcdsa)->Unit(benchmark::kMillisecond);

// Console reporter that also collects the rate counters and per-iteration times so
// main() can assemble BENCH_lint.json after the runs.
class LintCollector : public benchmark::ConsoleReporter {
 public:
  struct Result {
    double seconds_per_iter = 0;
    std::map<std::string, double> counters;
    std::string label;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      Result& r = results_[run.benchmark_name()];
      r.seconds_per_iter =
          run.iterations > 0 ? run.real_accumulated_time / static_cast<double>(run.iterations)
                             : 0;
      for (const auto& [name, counter] : run.counters) {
        r.counters[name] = counter.value;
      }
      r.label = run.report_label;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::map<std::string, Result>& results() const { return results_; }

 private:
  std::map<std::string, Result> results_;
};

std::string LintJson(const LintCollector& c) {
  std::string out = "{\"bench\":\"micro_lint\",\"apps\":[";
  bool first = true;
  for (const auto& [name, result] : c.results()) {
    if (name.rfind("BM_Lint", 0) != 0) {
      continue;
    }
    auto counter = [&](const char* key) {
      auto it = result.counters.find(key);
      return it != result.counters.end() ? it->second : 0.0;
    };
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"app\":\"%s\",\"instrs_analyzed\":%.0f,\"fixpoint_iters\":%.0f,"
                  "\"findings\":%.0f,\"contract_checks\":%.0f,"
                  "\"seconds_to_fixpoint\":%.4f,\"instr_per_s\":%.0f}",
                  first ? "" : ",", result.label.c_str(), counter("instrs_analyzed"),
                  counter("fixpoint_iters"), counter("findings"),
                  counter("contract_checks"), result.seconds_per_iter,
                  counter("instr/s"));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace
}  // namespace parfait

int main(int argc, char** argv) {
  // benchmark::Initialize hard-errors on flags it does not know, so only the
  // --benchmark_* flags pass through; everything else (e.g. --json=) is ours.
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  parfait::LintCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);

  std::string json = parfait::LintJson(collector);
  const char* path = parfait::bench::FlagStr(argc, argv, "--json", "BENCH_lint.json");
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("lint bench written to %s\n", path);
  }
  benchmark::Shutdown();
  return 0;
}
