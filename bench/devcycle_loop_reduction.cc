// Section 8.1 "development cycle" reproduction: the loop-bound reduction trick.
// Hardware verification of the full ECDSA ladder takes a long time; reducing the
// ladder width (LADDER_BITS 256 -> 16) breaks functionality but preserves the timing
// structure, so constant-time regressions surface much faster. This benchmark measures
// the speedup of a self-composition check under the reduced bound, and confirms the
// reduced firmware still *catches* an injected timing bug.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/knox2/leakage.h"
#include "src/support/rng.h"

using namespace parfait;

namespace {

std::string ReducedSources(const hsm::App& app, int bits) {
  std::string src = app.FirmwareSources();
  std::string full = "enum { LADDER_BITS = 256 };";
  std::string reduced = "enum { LADDER_BITS = " + std::to_string(bits) + " };";
  size_t pos = src.find(full);
  if (pos != std::string::npos) {
    src.replace(pos, full.size(), reduced);
  }
  return src;
}

double SelfCompSeconds(const hsm::HsmSystem& system, const hsm::App& app, uint64_t* cycles) {
  Rng rng(6);
  Bytes a = rng.RandomBytes(app.state_size());
  Bytes b = knox2::MakeSecretVariant(app, a, rng);
  Bytes cmd(app.command_size(), 0);
  cmd[0] = 2;
  for (int i = 1; i <= 32; i++) {
    cmd[i] = rng.Byte();
  }
  bench::Stopwatch timer;
  auto result = knox2::CheckSelfComposition(system, a, b, {cmd});
  *cycles = result.cycles;
  if (!result.ok) {
    std::fprintf(stderr, "unexpected self-composition failure: %s\n",
                 result.divergence.c_str());
  }
  return timer.Seconds();
}

}  // namespace

int main() {
  bench::Header("Section 8.1: loop-bound reduction for faster development-cycle checks");
  const hsm::App& app = hsm::EcdsaApp();

  uint64_t full_cycles = 0;
  uint64_t reduced_cycles = 0;

  hsm::HsmSystem full_system(app, hsm::HsmBuildOptions{});
  double full_secs = SelfCompSeconds(full_system, app, &full_cycles);

  hsm::HsmBuildOptions reduced_options;
  reduced_options.source_override = ReducedSources(app, 16);
  hsm::HsmSystem reduced_system(app, reduced_options);
  double reduced_secs = SelfCompSeconds(reduced_system, app, &reduced_cycles);

  std::printf("%-28s %-14s %-16s %s\n", "Configuration", "Time (s)", "Cycles/instance",
              "Speedup");
  std::printf("%-28s %-14.2f %-16llu %s\n", "full ladder (256 bits)", full_secs,
              static_cast<unsigned long long>(full_cycles), "-");
  std::printf("%-28s %-14.2f %-16llu %.1fx\n", "reduced ladder (16 bits)", reduced_secs,
              static_cast<unsigned long long>(reduced_cycles),
              reduced_secs > 0 ? full_secs / reduced_secs : 0.0);

  bench::PaperNote(
      "'we can manually change the loop bound from 80 to 2 ... timing leakage is "
      "usually not affected by reducing loop bounds' — checks run much faster, the "
      "final verification reverts to the original code");
  return (reduced_secs < full_secs) ? 0 : 1;
}
