// Microbenchmarks for the simulation substrates: abstract-machine interpretation speed
// and cycle-level SoC simulation throughput for both CPU models (this is the
// denominator of Table 4's cycles/s column).
//
// The machine benchmarks come in before/after pairs: the *Baseline variants run the
// pre-template path (PrepareCallFresh: full region rebuild, no decode cache) while the
// plain variants run the production path (prototype copy or dirty-page reset + shared
// decode cache). The pairing is emitted as BENCH_simperf.json so the simulator's perf
// trajectory is recorded next to the numbers, not in a commit message:
//   {"bench":"micro_sim",
//    "machine_interpreter":{"before_instr_per_s":...,"after_instr_per_s":...,"speedup":...},
//    "machine_setup":{"before_us":...,"after_us":...,"speedup":...},
//    "soc_cycles":[{"cpu":"IbexLite","cycles_per_s":...},...]}
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/hsm/hsm_system.h"
#include "src/platform/model_asm.h"
#include "src/riscv/machine.h"
#include "src/support/profiler.h"
#include "src/support/rng.h"
#include "src/support/telemetry.h"

namespace parfait {
namespace {

const hsm::HsmSystem& HasherSystem(soc::CpuKind cpu) {
  static hsm::HsmSystem* ibex = new hsm::HsmSystem(hsm::HasherApp(), [] {
    hsm::HsmBuildOptions o;
    o.cpu = soc::CpuKind::kIbexLite;
    return o;
  }());
  static hsm::HsmSystem* pico = new hsm::HsmSystem(hsm::HasherApp(), [] {
    hsm::HsmBuildOptions o;
    o.cpu = soc::CpuKind::kPicoLite;
    return o;
  }());
  return cpu == soc::CpuKind::kIbexLite ? *ibex : *pico;
}

struct HashWorkload {
  Bytes state;
  Bytes command;
};

HashWorkload MakeWorkload() {
  Rng rng(1);
  HashWorkload w;
  w.state = rng.RandomBytes(32);
  w.command = hsm::HasherApp().RandomValidCommand(rng);
  w.command[0] = 2;
  return w;
}

// Steady-state interpretation, production path: thread-local template machine,
// dirty-page reset between calls, shared ROM decode cache.
void BM_MachineInterpreter(benchmark::State& state) {
  const auto& system = HasherSystem(soc::CpuKind::kIbexLite);
  HashWorkload w = MakeWorkload();
  uint64_t instructions = 0;
  for (auto _ : state) {
    auto result = system.model_asm().Step(w.state, w.command, 100'000'000);
    benchmark::DoNotOptimize(result.ok);
    instructions += result.instret;
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpreter);

// Steady-state interpretation, pre-template path: every call rebuilds the machine
// from the image and every fetch re-runs Decode() (reference-interpreter mode).
// This is what Step() cost before the templates landed — kept as the recorded
// "before" leg.
void BM_MachineInterpreterBaseline(benchmark::State& state) {
  const auto& system = HasherSystem(soc::CpuKind::kIbexLite);
  HashWorkload w = MakeWorkload();
  uint64_t instructions = 0;
  for (auto _ : state) {
    riscv::Machine m = system.model_asm().PrepareCallFresh(w.state, w.command);
    m.DisableDecodeCache();
    auto run = m.Run(100'000'000);
    benchmark::DoNotOptimize(run);
    instructions += m.instret();
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpreterBaseline);

// Steady-state execution under the DBT backend: template machine, dirty-page reset,
// shared ROM translation cache, threaded superblock dispatch. The third leg of the
// comparison (reference interpreter / decode-cache interpreter / DBT); the block
// cache statistics ModelAsm flushes during the run are exported as plain counters.
void BM_MachineInterpreterDbt(benchmark::State& state) {
  const auto& system = HasherSystem(soc::CpuKind::kIbexLite);
  HashWorkload w = MakeWorkload();
  auto prev = platform::ModelAsm::backend();
  platform::ModelAsm::SetBackend(riscv::Machine::Backend::kDBT);
  auto& t = telemetry::Telemetry::Global();
  bool was_enabled = t.enabled();
  t.Enable();
  auto before = t.Snapshot();
  uint64_t instructions = 0;
  for (auto _ : state) {
    auto result = system.model_asm().Step(w.state, w.command, 100'000'000);
    benchmark::DoNotOptimize(result.ok);
    instructions += result.instret;
  }
  auto after = t.Snapshot();
  platform::ModelAsm::SetBackend(prev);
  if (!was_enabled) {
    t.Disable();
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
  // Translation is once per unique block process-wide, so the timed run's delta is
  // zero once the shared cache is warm from the library's calibration passes;
  // report the cumulative count. The other three counters scale with executed
  // work, so report the timed run's delta.
  state.counters["block_translations"] = benchmark::Counter(
      static_cast<double>(after.CounterValue("machine/block_translations")));
  for (const char* name :
       {"machine/block_hits", "machine/block_invalidations", "machine/block_links"}) {
    const char* short_name = name + sizeof("machine/") - 1;
    state.counters[short_name] = benchmark::Counter(
        static_cast<double>(after.CounterValue(name) - before.CounterValue(name)));
  }
}
BENCHMARK(BM_MachineInterpreterDbt);

// Per-trial machine acquisition, production path: what Step() pays between trials —
// a dirty-page reset plus the per-call buffer reload (instead of rebuilding regions).
void BM_MachineSetup(benchmark::State& state) {
  const auto& model = HasherSystem(soc::CpuKind::kIbexLite).model_asm();
  HashWorkload w = MakeWorkload();
  riscv::Machine proto = model.PrepareCallFresh(w.state, w.command);
  riscv::Machine m = proto;
  for (auto _ : state) {
    m.ResetTo(proto);
    m.WriteMemory(model.state_addr(), w.state);
    m.WriteMemory(model.command_addr(), w.command);
    benchmark::DoNotOptimize(m.pc());
  }
}
BENCHMARK(BM_MachineSetup);

// Per-call machine setup, pre-template path: 256 KiB ROM copy + RAM + 1 MiB stack
// extension built from scratch every call.
void BM_MachineSetupBaseline(benchmark::State& state) {
  const auto& system = HasherSystem(soc::CpuKind::kIbexLite);
  HashWorkload w = MakeWorkload();
  for (auto _ : state) {
    riscv::Machine m = system.model_asm().PrepareCallFresh(w.state, w.command);
    benchmark::DoNotOptimize(m.pc());
  }
}
BENCHMARK(BM_MachineSetupBaseline);

// Disabled-mode cost of the profiler's instrumentation points: constructing a
// WorkSpan (and skipping Annotate behind active()) on the disabled global profiler.
// The contract is one relaxed atomic load and a branch — this benchmark prices it,
// and BENCH_simperf.json records it against the work one span guards (a checker
// command, i.e. one interpreter Step call) as profiler_off.overhead_pct.
void BM_ProfilerDisabledSpan(benchmark::State& state) {
  if (profiler::Profiler::Global().enabled()) {
    state.SkipWithError("profiler unexpectedly enabled");
    return;
  }
  for (auto _ : state) {
    profiler::WorkSpan span("bench/off");
    if (span.active()) {
      span.Annotate("never built");
    }
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_ProfilerDisabledSpan);

void BM_SocCycles(benchmark::State& state) {
  soc::CpuKind kind = state.range(0) == 0 ? soc::CpuKind::kIbexLite : soc::CpuKind::kPicoLite;
  const auto& system = HasherSystem(kind);
  Rng rng(2);
  Bytes cmd = hsm::HasherApp().RandomValidCommand(rng);
  uint64_t cycles = 0;
  for (auto _ : state) {
    auto soc = system.NewSoc();
    soc::WireHost host(soc.get());
    auto resp = host.Transact(cmd, hsm::HasherApp().response_size(), 50'000'000);
    benchmark::DoNotOptimize(resp.has_value());
    cycles += soc->cycles();
  }
  state.counters["cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.SetLabel(soc::CpuKindName(kind));
}
BENCHMARK(BM_SocCycles)->Arg(0)->Arg(1);

// Console reporter that additionally collects per-benchmark rate counters and
// per-iteration times, so main() can assemble BENCH_simperf.json after the runs.
class SimperfCollector : public benchmark::ConsoleReporter {
 public:
  struct Result {
    double seconds_per_iter = 0;
    std::map<std::string, double> counters;  // Already rate-adjusted by the library.
    std::string label;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      Result& r = results_[run.benchmark_name()];
      r.seconds_per_iter =
          run.iterations > 0 ? run.real_accumulated_time / static_cast<double>(run.iterations)
                             : 0;
      for (const auto& [name, counter] : run.counters) {
        r.counters[name] = counter.value;
      }
      r.label = run.report_label;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  double Counter(const std::string& bench, const std::string& counter) const {
    auto it = results_.find(bench);
    if (it == results_.end()) {
      return 0;
    }
    auto ct = it->second.counters.find(counter);
    return ct != it->second.counters.end() ? ct->second : 0;
  }

  double MicrosPerIter(const std::string& bench) const {
    auto it = results_.find(bench);
    return it != results_.end() ? it->second.seconds_per_iter * 1e6 : 0;
  }

  const std::map<std::string, Result>& results() const { return results_; }

 private:
  std::map<std::string, Result> results_;
};

std::string SimperfJson(const SimperfCollector& c, const std::string& meta) {
  double before_ips = c.Counter("BM_MachineInterpreterBaseline", "instr/s");
  double after_ips = c.Counter("BM_MachineInterpreter", "instr/s");
  double dbt_ips = c.Counter("BM_MachineInterpreterDbt", "instr/s");
  double before_us = c.MicrosPerIter("BM_MachineSetupBaseline");
  double after_us = c.MicrosPerIter("BM_MachineSetup");
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"micro_sim\",\"meta\":%s,"
                "\"machine_interpreter\":{\"before_instr_per_s\":%.0f,"
                "\"after_instr_per_s\":%.0f,\"speedup\":%.2f},"
                "\"machine_dbt\":{\"dbt_instr_per_s\":%.0f,"
                "\"speedup_vs_interp\":%.2f,\"speedup_vs_reference\":%.2f,"
                "\"block_translations\":%.0f,\"block_hits\":%.0f,"
                "\"block_links\":%.0f,\"block_invalidations\":%.0f},"
                "\"machine_setup\":{\"before_us\":%.2f,\"after_us\":%.2f,"
                "\"speedup\":%.2f},"
                "\"soc_cycles\":[",
                meta.c_str(),
                before_ips, after_ips, before_ips > 0 ? after_ips / before_ips : 0,
                dbt_ips, after_ips > 0 ? dbt_ips / after_ips : 0,
                before_ips > 0 ? dbt_ips / before_ips : 0,
                c.Counter("BM_MachineInterpreterDbt", "block_translations"),
                c.Counter("BM_MachineInterpreterDbt", "block_hits"),
                c.Counter("BM_MachineInterpreterDbt", "block_links"),
                c.Counter("BM_MachineInterpreterDbt", "block_invalidations"),
                before_us, after_us, after_us > 0 ? before_us / after_us : 0);
  std::string out = buf;
  bool first = true;
  for (const auto& [name, result] : c.results()) {
    if (name.rfind("BM_SocCycles", 0) != 0) {
      continue;
    }
    auto it = result.counters.find("cycles/s");
    if (it == result.counters.end()) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%s{\"cpu\":\"%s\",\"cycles_per_s\":%.0f}",
                  first ? "" : ",", result.label.c_str(), it->second);
    out += buf;
    first = false;
  }
  out += "]";
  // Disabled-mode profiler cost: one span per checker command, priced against one
  // interpreter Step call (the work a span guards in the instrumented checkers).
  double span_ns = c.MicrosPerIter("BM_ProfilerDisabledSpan") * 1e3;
  double interp_call_us = c.MicrosPerIter("BM_MachineInterpreter");
  std::snprintf(buf, sizeof(buf),
                ",\"profiler_off\":{\"span_ns\":%.2f,\"interp_call_us\":%.2f,"
                "\"overhead_pct\":%.4f}",
                span_ns, interp_call_us,
                interp_call_us > 0 ? span_ns / (interp_call_us * 1e3) * 100.0 : 0);
  out += buf;
  out += "}";
  return out;
}

}  // namespace
}  // namespace parfait

int main(int argc, char** argv) {
  // benchmark::Initialize hard-errors on flags it does not know, so only the
  // --benchmark_* flags pass through; everything else (e.g. --json=) is ours.
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  parfait::SimperfCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);

  // Both backends are measured in one run, so the meta backend says so.
  parfait::bench::TelemetryReport meta_report("micro_sim", 1);
  meta_report.SetBackend("interp+dbt");
  std::string json = parfait::SimperfJson(collector, meta_report.MetaJson());
  const char* path = parfait::bench::FlagStr(argc, argv, "--json", "BENCH_simperf.json");
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("simperf written to %s\n", path);
  }
  benchmark::Shutdown();
  return 0;
}
