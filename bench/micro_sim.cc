// Microbenchmarks for the simulation substrates: abstract-machine interpretation speed
// and cycle-level SoC simulation throughput for both CPU models (this is the
// denominator of Table 4's cycles/s column).
#include <benchmark/benchmark.h>

#include "src/hsm/hsm_system.h"
#include "src/support/rng.h"

namespace parfait {
namespace {

const hsm::HsmSystem& HasherSystem(soc::CpuKind cpu) {
  static hsm::HsmSystem* ibex = new hsm::HsmSystem(hsm::HasherApp(), [] {
    hsm::HsmBuildOptions o;
    o.cpu = soc::CpuKind::kIbexLite;
    return o;
  }());
  static hsm::HsmSystem* pico = new hsm::HsmSystem(hsm::HasherApp(), [] {
    hsm::HsmBuildOptions o;
    o.cpu = soc::CpuKind::kPicoLite;
    return o;
  }());
  return cpu == soc::CpuKind::kIbexLite ? *ibex : *pico;
}

void BM_MachineInterpreter(benchmark::State& state) {
  const auto& system = HasherSystem(soc::CpuKind::kIbexLite);
  Rng rng(1);
  Bytes st = rng.RandomBytes(32);
  Bytes cmd = hsm::HasherApp().RandomValidCommand(rng);
  cmd[0] = 2;
  uint64_t instructions = 0;
  for (auto _ : state) {
    auto result = system.model_asm().Step(st, cmd, 100'000'000);
    benchmark::DoNotOptimize(result.ok);
    instructions += result.instret;
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpreter);

void BM_SocCycles(benchmark::State& state) {
  soc::CpuKind kind = state.range(0) == 0 ? soc::CpuKind::kIbexLite : soc::CpuKind::kPicoLite;
  const auto& system = HasherSystem(kind);
  Rng rng(2);
  Bytes cmd = hsm::HasherApp().RandomValidCommand(rng);
  uint64_t cycles = 0;
  for (auto _ : state) {
    auto soc = system.NewSoc();
    soc::WireHost host(soc.get());
    auto resp = host.Transact(cmd, hsm::HasherApp().response_size(), 50'000'000);
    benchmark::DoNotOptimize(resp.has_value());
    cycles += soc->cycles();
  }
  state.counters["cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.SetLabel(soc::CpuKindName(kind));
}
BENCHMARK(BM_SocCycles)->Arg(0)->Arg(1);

}  // namespace
}  // namespace parfait

BENCHMARK_MAIN();
