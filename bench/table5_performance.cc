// Table 5 reproduction: run-time performance of the ECDSA HSM in signatures per
// second. The paper compares CompCert -O1 (the verified pipeline) against GCC -O2 and
// two commercial HSMs; here the O0 code generator is the verified-compiler stand-in
// and O2 the unverified fast baseline. Cycle counts are measured on the IbexLite SoC
// and converted at the OpenTitan reference clock of 100 MHz.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/hsm/hsm_system.h"
#include "src/support/rng.h"

using namespace parfait;

namespace {

// Cycles for one complete Sign command (wire-in to wire-out) on IbexLite.
uint64_t SignCycles(int opt_level) {
  const hsm::App& app = hsm::EcdsaApp();
  hsm::HsmBuildOptions options;
  options.opt_level = opt_level;
  options.cpu = soc::CpuKind::kIbexLite;
  hsm::HsmSystem system(app, options);

  Rng rng(5);
  Bytes state = rng.RandomBytes(app.state_size());
  state[40] &= 0x7f;  // Valid signing key.
  auto soc = system.NewSocWithFram(system.MakeFram(state));
  soc::WireHost host(soc.get());

  Bytes cmd(app.command_size(), 0);
  cmd[0] = 2;
  for (int i = 1; i <= 32; i++) {
    cmd[i] = rng.Byte();
  }
  uint64_t before = soc->cycles();
  auto resp = host.Transact(cmd, app.response_size(), 2'000'000'000ULL);
  if (!resp.has_value() || (*resp)[0] != 2) {
    std::fprintf(stderr, "sign failed at O%d\n", opt_level);
    return 0;
  }
  return soc->cycles() - before;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 5: ECDSA signing throughput (IbexLite @ 100 MHz)");
  std::printf("Model backend: %s\n", bench::ApplyBackendFlag(argc, argv));

  constexpr double kClockHz = 100e6;
  uint64_t o0_cycles = SignCycles(0);
  uint64_t o2_cycles = SignCycles(2);
  double o0_sigs = o0_cycles ? kClockHz / o0_cycles : 0;
  double o2_sigs = o2_cycles ? kClockHz / o2_cycles : 0;

  std::printf("%-24s %-18s %-14s %-10s %s\n", "HSM", "Compiler", "Cycles/sign", "Sig/s",
              "Speedup");
  std::printf("%-24s %-18s %-14llu %-10.1f %s\n", "Parfait ECDSA/IbexLite", "minicc O0",
              static_cast<unsigned long long>(o0_cycles), o0_sigs, "-");
  std::printf("%-24s %-18s %-14llu %-10.1f %.1fx\n", "", "minicc O2",
              static_cast<unsigned long long>(o2_cycles), o2_sigs,
              o2_cycles ? static_cast<double>(o0_cycles) / o2_cycles : 0.0);
  std::printf("%-24s %-18s %-14s %-10.1f %s   (paper-reported reference)\n",
              "Nitrokey HSM 2", "-", "-", 12.5, "");
  std::printf("%-24s %-18s %-14s %-10.1f %s   (paper-reported reference)\n", "YubiHSM 2",
              "-", "-", 13.7, "");

  bench::PaperNote(
      "CompCert -O1: 1.1 sig/s; GCC -O2: 8.1 sig/s (7x); commercial HSMs within 12x — "
      "shape: the verified (naive) compiler costs a single-digit factor, not orders of "
      "magnitude");
  return (o0_cycles != 0 && o2_cycles != 0 && o2_cycles < o0_cycles) ? 0 : 1;
}
