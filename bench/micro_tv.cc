// Microbenchmark for the translation validator: validated functions per second of
// wall clock and symbolic-step throughput for both case-study firmware images, at
// one thread and at all hardware threads, and at both opt levels (O0 through the
// strict relation, O2 through the relaxed relation + witness transformer entries).
//
// Emitted as BENCH_tv.json so the validator's cost is recorded next to its coverage:
//   {"bench":"micro_tv",
//    "apps":[{"app":"hasher","opt_level":0,"threads":1,"functions":...,
//             "validated":...,"symbolic_steps":...,"seconds_per_run":...,
//             "functions_per_s":...,"steps_per_s":...},...]}
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/tv/tv.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"

namespace parfait {
namespace {

const hsm::HsmSystem& SystemFor(const std::string& app, int opt_level) {
  static auto* systems = new std::map<std::string, hsm::HsmSystem*>();
  std::string key = app + "/O" + std::to_string(opt_level);
  auto it = systems->find(key);
  if (it == systems->end()) {
    hsm::HsmBuildOptions build;
    build.opt_level = opt_level;
    const hsm::App& spec = app == "hasher" ? hsm::HasherApp() : hsm::EcdsaApp();
    it = systems->emplace(key, new hsm::HsmSystem(spec, build)).first;
  }
  return *it->second;
}

// One full validation of every witnessed function per iteration. "Symbolic steps"
// counts interpreted instructions plus mirrored source expressions — the quantity
// the lockstep walk actually pays for.
void RunTvBench(benchmark::State& state, const std::string& app, int threads,
                int opt_level) {
  const hsm::HsmSystem& system = SystemFor(app, opt_level);
  analysis::TvConfig config;
  config.num_threads = threads;
  config.emit_evidence = false;
  uint64_t functions = 0;
  uint64_t validated = 0;
  uint64_t steps = 0;
  for (auto _ : state) {
    analysis::TvReport report = analysis::ValidateSystem(system, config);
    benchmark::DoNotOptimize(report.ok);
    functions = report.telemetry.CounterValue("tv/functions");
    validated = report.telemetry.CounterValue("tv/validated");
    steps += report.telemetry.CounterValue("tv/steps");
  }
  state.counters["functions/s"] = benchmark::Counter(
      static_cast<double>(functions) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
  state.counters["functions"] = benchmark::Counter(static_cast<double>(functions));
  state.counters["validated"] = benchmark::Counter(static_cast<double>(validated));
  state.counters["symbolic_steps"] = benchmark::Counter(
      state.iterations() > 0
          ? static_cast<double>(steps) / static_cast<double>(state.iterations())
          : 0);
  state.counters["threads"] = benchmark::Counter(static_cast<double>(threads));
  state.counters["opt_level"] = benchmark::Counter(static_cast<double>(opt_level));
  state.SetLabel(app);
}

void BM_TvHasher1(benchmark::State& state) { RunTvBench(state, "hasher", 1, 0); }
BENCHMARK(BM_TvHasher1)->Unit(benchmark::kMillisecond);

void BM_TvEcdsa1(benchmark::State& state) { RunTvBench(state, "ecdsa", 1, 0); }
BENCHMARK(BM_TvEcdsa1)->Unit(benchmark::kMillisecond);

void BM_TvEcdsaAllThreads(benchmark::State& state) { RunTvBench(state, "ecdsa", 0, 0); }
BENCHMARK(BM_TvEcdsaAllThreads)->Unit(benchmark::kMillisecond);

// O2 legs: same firmware validated through the relaxed relation + witness
// transformer entries, so BENCH_tv.json records validated-functions/s at both
// opt levels side by side.
void BM_TvHasher1O2(benchmark::State& state) { RunTvBench(state, "hasher", 1, 2); }
BENCHMARK(BM_TvHasher1O2)->Unit(benchmark::kMillisecond);

void BM_TvEcdsa1O2(benchmark::State& state) { RunTvBench(state, "ecdsa", 1, 2); }
BENCHMARK(BM_TvEcdsa1O2)->Unit(benchmark::kMillisecond);

void BM_TvEcdsaAllThreadsO2(benchmark::State& state) { RunTvBench(state, "ecdsa", 0, 2); }
BENCHMARK(BM_TvEcdsaAllThreadsO2)->Unit(benchmark::kMillisecond);

// Console reporter that also collects rate counters and per-iteration times so
// main() can assemble BENCH_tv.json after the runs.
class TvCollector : public benchmark::ConsoleReporter {
 public:
  struct Result {
    double seconds_per_iter = 0;
    std::map<std::string, double> counters;
    std::string label;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      Result& r = results_[run.benchmark_name()];
      r.seconds_per_iter =
          run.iterations > 0 ? run.real_accumulated_time / static_cast<double>(run.iterations)
                             : 0;
      for (const auto& [name, counter] : run.counters) {
        r.counters[name] = counter.value;
      }
      r.label = run.report_label;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::map<std::string, Result>& results() const { return results_; }

 private:
  std::map<std::string, Result> results_;
};

std::string TvJson(const TvCollector& c) {
  std::string out = "{\"bench\":\"micro_tv\",\"apps\":[";
  bool first = true;
  for (const auto& [name, result] : c.results()) {
    if (name.rfind("BM_Tv", 0) != 0) {
      continue;
    }
    auto counter = [&](const char* key) {
      auto it = result.counters.find(key);
      return it != result.counters.end() ? it->second : 0.0;
    };
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"app\":\"%s\",\"opt_level\":%.0f,\"threads\":%.0f,"
                  "\"functions\":%.0f,"
                  "\"validated\":%.0f,\"symbolic_steps\":%.0f,\"seconds_per_run\":%.4f,"
                  "\"functions_per_s\":%.0f,\"steps_per_s\":%.0f}",
                  first ? "" : ",", result.label.c_str(), counter("opt_level"),
                  counter("threads"), counter("functions"), counter("validated"),
                  counter("symbolic_steps"), result.seconds_per_iter,
                  counter("functions/s"), counter("steps/s"));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace
}  // namespace parfait

int main(int argc, char** argv) {
  // benchmark::Initialize hard-errors on flags it does not know, so only the
  // --benchmark_* flags pass through; everything else (e.g. --json=) is ours.
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  parfait::TvCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);

  std::string json = parfait::TvJson(collector);
  const char* path = parfait::bench::FlagStr(argc, argv, "--json", "BENCH_tv.json");
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("tv bench written to %s\n", path);
  }
  benchmark::Shutdown();
  return 0;
}
