// Quickstart: build a password-hashing HSM, run it on the simulated SoC, and check it
// against its specification — the complete Parfait stack in ~60 lines of user code.
//
//   $ ./quickstart
#include <cstdio>

#include "src/hsm/hsm_system.h"
#include "src/support/rng.h"

using namespace parfait;

int main() {
  // 1. Pick an application (figure 12's password hasher) and build the full system:
  //    MiniC firmware -> RV32IM image -> SoC with the IbexLite core.
  const hsm::App& app = hsm::HasherApp();
  hsm::HsmSystem system(app, hsm::HsmBuildOptions{});
  std::printf("built firmware: %zu bytes of ROM, handle() at 0x%08x\n",
              system.image().rom.size(), system.model_asm().handle_addr());

  // 2. Power on a SoC and talk to it over the wire-level UART interface.
  auto soc = system.NewSoc();
  soc::WireHost host(soc.get());

  // 3. Initialize the HSM with a secret.
  Rng rng(1);
  Bytes init(app.command_size());
  init[0] = 1;  // Initialize tag.
  for (size_t i = 1; i < init.size(); i++) {
    init[i] = rng.Byte();
  }
  auto init_resp = host.Transact(init, app.response_size(), 10'000'000);
  if (!init_resp.has_value() || (*init_resp)[0] != 1) {
    std::printf("FAIL: initialize did not complete\n");
    return 1;
  }
  std::printf("initialized (%llu cycles so far)\n",
              static_cast<unsigned long long>(soc->cycles()));

  // 4. Hash a password.
  Bytes hash_cmd(app.command_size(), 0);
  hash_cmd[0] = 2;  // Hash tag.
  const char* password = "correct horse battery staple";
  for (size_t i = 0; i < 32 && password[i] != '\0'; i++) {
    hash_cmd[1 + i] = static_cast<uint8_t>(password[i]);
  }
  auto hash_resp = host.Transact(hash_cmd, app.response_size(), 10'000'000);
  if (!hash_resp.has_value() || (*hash_resp)[0] != 2) {
    std::printf("FAIL: hash did not complete\n");
    return 1;
  }
  std::printf("digest from the SoC: %s\n",
              ToHex(std::span<const uint8_t>(hash_resp->data() + 1, 32)).c_str());

  // 5. Check the wire-level response against the application specification.
  auto spec1 = app.SpecStepEncoded(app.InitStateEncoded(), init);
  auto spec2 = app.SpecStepEncoded(spec1->first, hash_cmd);
  bool match = spec2.has_value() && spec2->second == *hash_resp;
  std::printf("specification agrees: %s\n", match ? "YES" : "NO");
  std::printf("total: %llu cycles at the cycle-accurate SoC level\n",
              static_cast<unsigned long long>(soc->cycles()));
  return match ? 0 : 1;
}
