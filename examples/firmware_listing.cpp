// Firmware inspection: build the password hasher at both optimization levels and
// print objdump-style listings of handle() — a direct look at what the O0
// (verified-compiler stand-in) and O2 (optimizing) code generators emit, the
// difference Table 5 measures.
//
//   $ ./firmware_listing
#include <cstdio>
#include <sstream>

#include "src/hsm/hsm_system.h"
#include "src/riscv/disasm.h"

using namespace parfait;

namespace {

// Prints the listing lines between the `handle` label and the next label.
void PrintHandle(const riscv::Image& image, const char* title) {
  std::printf("---- %s ----\n", title);
  std::istringstream in(riscv::DisassembleImage(image));
  std::string line;
  bool inside = false;
  int printed = 0;
  while (std::getline(in, line)) {
    if (line == "handle:") {
      inside = true;
    } else if (inside && !line.empty() && line.back() == ':' && line[0] != ' ') {
      break;  // Next symbol.
    }
    if (inside) {
      std::printf("%s\n", line.c_str());
      if (++printed > 24) {
        std::printf("  ... (truncated)\n");
        break;
      }
    }
  }
}

size_t TextBytes(const riscv::Image& image) { return image.rom.size(); }

}  // namespace

int main() {
  const hsm::App& app = hsm::HasherApp();
  size_t sizes[2];
  int idx = 0;
  for (int opt : {0, 2}) {
    hsm::HsmBuildOptions options;
    options.opt_level = opt;
    hsm::HsmSystem system(app, options);
    char title[64];
    std::snprintf(title, sizeof(title), "handle() at O%d  (%zu bytes of ROM total)", opt,
                  TextBytes(system.image()));
    PrintHandle(system.image(), title);
    sizes[idx++] = TextBytes(system.image());
    std::printf("\n");
  }
  std::printf("O2 ROM is %.0f%% the size of O0 ROM.\n",
              100.0 * static_cast<double>(sizes[1]) / static_cast<double>(sizes[0]));
  return sizes[1] < sizes[0] ? 0 : 1;
}
