// Attack gallery: a narrated walk through one timing attack and its detection.
//
// A developer "optimizes" the password hasher with a cache: if the submitted message
// equals the previous one, the stored digest is replayed without recomputing. The
// functional behaviour is identical — Starling passes — but the response *time* now
// reveals whether two submissions were equal, which the specification never exposes.
// Knox2's self-composition check catches it at the cycle level.
//
//   $ ./attack_gallery
#include <cstdio>

#include "src/knox2/leakage.h"
#include "src/platform/firmware.h"
#include "src/starling/starling.h"
#include "src/support/rng.h"

using namespace parfait;

int main() {
  const hsm::App& app = hsm::HasherApp();

  std::printf("A developer ships this 'optimization': skip the HMAC when the secret's\n");
  std::printf("first byte is zero (a stand-in for any secret-dependent fast path).\n\n");

  std::string leaky = platform::ReadFirmwareFile("hash.c") + R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    for (u32 i = 0; i < 32; i = i + 1) { state[i] = cmd[1 + i]; }
    resp[0] = 1;
    return;
  }
  if (tag == 2) {
    u8 digest[32];
    if (state[0] == 0) {
      /* "fast path": secret-dependent shortcut */
      for (u32 i = 0; i < 32; i = i + 1) { digest[i] = 0; }
    } else {
      hmac_blake2s(digest, state, cmd + 1, 32);
    }
    resp[0] = 2;
    for (u32 i = 0; i < 32; i = i + 1) { resp[1 + i] = digest[i]; }
    return;
  }
}
)";

  // Step 1: functional checks do not catch timing.
  // (Starling checks bytes in/bytes out against the spec; the buggy firmware is only
  // wrong when state[0]==0, and even then only in *when*, not *what*, for most states.)
  std::printf("[1] Starling (software level) on the original app: ");
  auto report = starling::CheckApp(app);
  std::printf("%s\n", report.ok ? "PASS (as expected)" : report.failure.c_str());

  // Step 2: self-composition at the cycle level. Two HSMs whose secrets differ — one
  // takes the fast path, one the slow path — must be indistinguishable on the wires.
  std::printf("[2] Knox2 self-composition on the 'optimized' firmware: ");
  hsm::HsmBuildOptions options;
  options.source_override = leaky;
  hsm::HsmSystem buggy(app, options);
  Bytes secret_a(app.state_size(), 0);     // Fast path.
  Bytes secret_b(app.state_size(), 0x5a);  // Slow path.
  Bytes cmd(app.command_size(), 3);
  cmd[0] = 2;
  auto result = knox2::CheckSelfComposition(buggy, secret_a, secret_b, {cmd});
  if (result.ok) {
    std::printf("PASS — that would be a miss!\n");
    return 1;
  }
  std::printf("CAUGHT\n    %s\n", result.divergence.c_str());

  // Step 3: the fixed (original) firmware passes the same check.
  std::printf("[3] Same check on the original constant-time firmware: ");
  hsm::HsmSystem fixed(app, hsm::HsmBuildOptions{});
  auto clean = knox2::CheckSelfComposition(fixed, secret_a, secret_b, {cmd});
  std::printf("%s\n", clean.ok ? "PASS" : clean.divergence.c_str());

  std::printf("\nThe adversary in the paper's threat model observes every output wire on\n");
  std::printf("every cycle; the divergence above is exactly the signal they would use.\n");
  return clean.ok ? 0 : 1;
}
