// Platform portability (section 8.1): the same application firmware runs — and is
// verified — on both CPUs. In the paper, porting the Ibex platform to PicoRV32 took
// two hours and 10 changed lines of mapping; here the figure 10 mappings are shared,
// so the port is a one-line configuration change, demonstrated end to end.
//
//   $ ./port_platform
#include <cstdio>

#include "src/knox2/cosim.h"
#include "src/support/rng.h"

using namespace parfait;

int main() {
  const hsm::App& app = hsm::HasherApp();
  Rng rng(11);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  cmd[0] = 2;

  std::printf("%-10s %-12s %-14s %-12s %-10s %s\n", "Platform", "Instrs", "Cycles", "CPI",
              "Verified", "Response head");
  Bytes responses[2];
  uint64_t cycles[2];
  int idx = 0;
  for (soc::CpuKind cpu : {soc::CpuKind::kIbexLite, soc::CpuKind::kPicoLite}) {
    hsm::HsmBuildOptions options;
    options.cpu = cpu;  // The entire "port".
    hsm::HsmSystem system(app, options);
    auto result = knox2::CosimHandleStep(system, state, cmd);
    if (!result.ok) {
      std::printf("verification FAILED on %s: %s\n", soc::CpuKindName(cpu),
                  result.divergence.c_str());
      return 1;
    }
    responses[idx] = result.final_response;
    cycles[idx] = result.stats.cycles;
    std::printf("%-10s %-12llu %-14llu %-12.2f %-10s %s...\n", soc::CpuKindName(cpu),
                static_cast<unsigned long long>(result.stats.instructions),
                static_cast<unsigned long long>(result.stats.cycles),
                static_cast<double>(result.stats.cycles) / result.stats.instructions,
                "PASS",
                ToHex(std::span<const uint8_t>(result.final_response.data(), 8)).c_str());
    idx++;
  }

  bool same_response = responses[0] == responses[1];
  bool pico_slower = cycles[1] > cycles[0];
  std::printf("\nSame firmware binary semantics on both cores: %s\n",
              same_response ? "YES" : "NO");
  std::printf("PicoLite needs more cycles per op (paper's Table 4 shape): %s\n",
              pico_slower ? "YES" : "NO");
  std::printf("Port effort: one enum in HsmBuildOptions; the register/pointer mappings\n");
  std::printf("and all proof machinery carried over unchanged (paper: 2 hours, 10 lines).\n");
  return (same_response && pico_slower) ? 0 : 1;
}
