// Certificate signing with the ECDSA HSM (the paper's running example): a
// PKCS#11-style flow where the CA key never leaves the device — the host sends
// pre-hashed certificate digests and receives signatures, and there is no command that
// reveals the signing key.
//
//   $ ./ecdsa_certify
#include <cstdio>
#include <cstring>

#include "src/crypto/ecdsa.h"
#include "src/crypto/sha256.h"
#include "src/hsm/hsm_system.h"
#include "src/support/rng.h"

using namespace parfait;

int main() {
  const hsm::App& app = hsm::EcdsaApp();
  hsm::HsmSystem system(app, hsm::HsmBuildOptions{});
  auto soc = system.NewSoc();
  soc::WireHost host(soc.get());
  Rng rng(7);

  // Provision the HSM: a PRF key (for deterministic nonces) and the CA signing key.
  std::array<uint8_t, 32> ca_key;
  rng.Fill(ca_key);
  ca_key[0] &= 0x7f;
  Bytes init(app.command_size());
  init[0] = 1;
  for (int i = 0; i < 32; i++) {
    init[1 + i] = rng.Byte();  // PRF key.
    init[33 + i] = ca_key[i];
  }
  auto init_resp = host.Transact(init, app.response_size(), 10'000'000);
  if (!init_resp.has_value() || (*init_resp)[0] != 1) {
    std::printf("FAIL: provisioning\n");
    return 1;
  }
  // The CA's public key, derived host-side from the same key material the operator
  // injected (the HSM itself never reveals it).
  std::array<uint8_t, 32> pub_x;
  std::array<uint8_t, 32> pub_y;
  crypto::EcdsaPublicKey(ca_key, pub_x, pub_y);
  std::printf("CA provisioned; public key x = %s...\n",
              ToHex(std::span<const uint8_t>(pub_x.data(), 8)).c_str());

  // Sign two "certificates" (their SHA-256 digests, as a CA front-end would submit).
  const char* subjects[] = {"CN=alice,O=Example Corp", "CN=bob,O=Example Corp"};
  for (const char* subject : subjects) {
    auto digest = crypto::Sha256::Hash(
        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(subject),
                                 std::strlen(subject)));
    Bytes sign_cmd(app.command_size(), 0);
    sign_cmd[0] = 2;
    std::memcpy(sign_cmd.data() + 1, digest.data(), 32);
    auto resp = host.Transact(sign_cmd, app.response_size(), 600'000'000);
    if (!resp.has_value() || (*resp)[0] != 2) {
      std::printf("FAIL: signing %s\n", subject);
      return 1;
    }
    crypto::EcdsaSignature sig;
    std::memcpy(sig.r.data(), resp->data() + 1, 32);
    std::memcpy(sig.s.data(), resp->data() + 33, 32);
    bool valid = crypto::EcdsaVerify(digest, pub_x, pub_y, sig);
    std::printf("signed %-28s r=%s...  verify: %s\n", subject,
                ToHex(std::span<const uint8_t>(sig.r.data(), 8)).c_str(),
                valid ? "OK" : "INVALID");
    if (!valid) {
      return 1;
    }
  }

  // Key non-extractability: there is no command to read the key; malformed commands
  // get the canonical zero response, revealing nothing.
  Bytes probe = app.RandomInvalidCommand(rng);
  auto probe_resp = host.Transact(probe, app.response_size(), 10'000'000);
  bool canonical = probe_resp.has_value() && *probe_resp == app.EncodeResponseNone();
  std::printf("malformed probe command -> canonical error response: %s\n",
              canonical ? "YES" : "NO");

  // Nonce uniqueness (figure 4's PRF counter): signing the same digest twice gives
  // different signatures because the counter advanced.
  auto digest = crypto::Sha256::Hash(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(subjects[0]), std::strlen(subjects[0])));
  Bytes again(app.command_size(), 0);
  again[0] = 2;
  std::memcpy(again.data() + 1, digest.data(), 32);
  auto r1 = host.Transact(again, app.response_size(), 600'000'000);
  auto r2 = host.Transact(again, app.response_size(), 600'000'000);
  bool distinct = r1.has_value() && r2.has_value() && *r1 != *r2;
  std::printf("re-signing the same digest yields a fresh nonce/signature: %s\n",
              distinct ? "YES" : "NO");
  return (canonical && distinct) ? 0 : 1;
}
