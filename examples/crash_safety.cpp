// Crash safety sweep (figure 9): cut power at *every* interesting cycle during a
// command and verify that recovery always sees either the complete old state or the
// complete new state — the atomicity contract of the journaled store_state.
//
//   $ ./crash_safety
#include <cstdio>

#include "src/hsm/hsm_system.h"
#include "src/support/rng.h"

using namespace parfait;

int main() {
  const hsm::App& app = hsm::HasherApp();
  hsm::HsmSystem system(app, hsm::HsmBuildOptions{});
  Rng rng(13);

  // Old state: a known secret. New state: what Initialize(new_secret) installs.
  Bytes old_state = rng.RandomBytes(app.state_size());
  Bytes init_cmd(app.command_size());
  init_cmd[0] = 1;
  for (size_t i = 1; i < init_cmd.size(); i++) {
    init_cmd[i] = rng.Byte();
  }
  Bytes new_state(init_cmd.begin() + 1, init_cmd.end());

  // First, measure how long the full command takes.
  uint64_t full_cycles;
  {
    auto soc = system.NewSocWithFram(system.MakeFram(old_state));
    soc::WireHost host(soc.get());
    auto resp = host.Transact(init_cmd, app.response_size(), 10'000'000);
    if (!resp.has_value()) {
      std::printf("FAIL: baseline run\n");
      return 1;
    }
    full_cycles = soc->cycles();
  }
  std::printf("full command takes %llu cycles; sweeping power cuts...\n",
              static_cast<unsigned long long>(full_cycles));

  // Sweep: cut power at a spread of cycle counts across the whole command (every
  // cycle would take a while; a dense stride still hits the journal-commit window).
  uint64_t stride = full_cycles / 400 + 1;
  int old_count = 0;
  int new_count = 0;
  int corrupt = 0;
  for (uint64_t cut = 1; cut < full_cycles; cut += stride) {
    Bytes fram;
    {
      auto soc = system.NewSocWithFram(system.MakeFram(old_state));
      soc::WireHost host(soc.get());
      // Drive exactly `cut` cycles, then "pull the plug".
      host.Transact(init_cmd, app.response_size(), cut);
      fram = soc->bus().DumpFram();
    }
    // Recovery: a fresh power-on must see a consistent state.
    uint32_t flag = LoadLe32(fram.data());
    uint32_t offset = 4 + (flag == 0 ? 0 : static_cast<uint32_t>(app.state_size()));
    Bytes active(fram.begin() + offset, fram.begin() + offset + app.state_size());
    if (active == old_state) {
      old_count++;
    } else if (active == new_state) {
      new_count++;
    } else {
      corrupt++;
      std::printf("CORRUPT state after cut at cycle %llu!\n",
                  static_cast<unsigned long long>(cut));
    }
  }
  std::printf("power cuts swept: %d -> old state, %d -> new state, %d corrupt\n",
              old_count + 0, new_count, corrupt);
  std::printf("atomicity (figure 9) holds: %s\n", corrupt == 0 ? "YES" : "NO");
  // Sanity: the sweep must have seen both sides of the commit point.
  bool both_sides = old_count > 0 && new_count > 0;
  std::printf("commit point crossed within the sweep: %s\n", both_sides ? "YES" : "NO");
  return (corrupt == 0 && both_sides) ? 0 : 1;
}
