// parfait-contract: manage and enforce the ISA-level leakage contracts under
// tools/contracts/ (src/contract/contract.h).
//
// Usage:
//   parfait-contract lint FILE...
//       Validates well-formedness AND canonical form: each file must parse and be
//       byte-identical to the canonical serialization of what it parses to, so a
//       committed artifact can never drift from what the tools actually consume.
//   parfait-contract diff A B
//       Explains how two contracts differ, one line per divergent class.
//       Exit 0 when identical, 1 when they differ.
//   parfait-contract builtin SOC
//       Prints the builtin contract for a SoC id (ibex_lite, pico_lite,
//       ibex_lite_vlm, pico_lite_vlm) in canonical form — how the committed
//       artifacts are (re)generated.
//   parfait-contract check --app=ecdsa|hasher --contract=FILE [--opt-level=0|2]
//                          [--dynamic] [--commands=N] [--threads=N] [--json=FILE]
//                          [--baseline=FILE] [--update-baseline]
//       Builds the firmware for the SoC the contract names (the `_vlm` suffix
//       selects the variable-latency multiplier) and runs the static
//       contract-conformance pass; findings carry the lint's provenance chain back
//       to the FRAM secret seed. --dynamic additionally replays a deterministic
//       command workload under the Knox2 taint emulator with the sink set
//       configured from the same contract. Reports are byte-identical at any
//       --threads value.
//
// Exit codes: 0 clean (or all findings in the baseline), 1 findings, 2 error.
// Baseline lines are `<app> <soc> <pc-hex> <kind>`.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/contract/conformance.h"
#include "src/contract/contract.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"
#include "tools/baseline.h"

namespace {

using parfait::analysis::Finding;
using parfait::analysis::FindingKindName;
using parfait::contract::CheckConformance;
using parfait::contract::ConformanceOptions;
using parfait::contract::ConformanceReport;
using parfait::contract::LeakageContract;

std::string FlagValue(int argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

bool FlagSet(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; i++) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: parfait-contract lint FILE...\n"
               "       parfait-contract diff A B\n"
               "       parfait-contract builtin SOC\n"
               "       parfait-contract check --app=ecdsa|hasher --contract=FILE\n"
               "                              [--opt-level=0|2] [--dynamic] [--commands=N]\n"
               "                              [--threads=N] [--json=FILE]\n"
               "                              [--baseline=FILE] [--update-baseline]\n");
  return 2;
}

int RunLintCmd(const std::vector<std::string>& files) {
  if (files.empty()) {
    return Usage();
  }
  int bad = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "parfait-contract: cannot read %s\n", path.c_str());
      bad++;
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = parfait::contract::ParseContract(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "parfait-contract: %s: %s\n", path.c_str(), parsed.error().c_str());
      bad++;
      continue;
    }
    std::string canonical = parfait::contract::SerializeContract(parsed.value());
    if (canonical != text.str()) {
      std::fprintf(stderr,
                   "parfait-contract: %s: not in canonical form (regenerate with "
                   "`parfait-contract builtin %s` or re-serialize)\n",
                   path.c_str(), parsed.value().soc.c_str());
      bad++;
      continue;
    }
    std::printf("parfait-contract: %s: ok (soc %s, v%d)\n", path.c_str(),
                parsed.value().soc.c_str(), parsed.value().version);
  }
  return bad == 0 ? 0 : 1;
}

int RunDiffCmd(const std::string& path_a, const std::string& path_b) {
  auto a = parfait::contract::LoadContractFile(path_a);
  auto b = parfait::contract::LoadContractFile(path_b);
  for (const auto* r : {&a, &b}) {
    if (!r->ok()) {
      std::fprintf(stderr, "parfait-contract: %s\n", r->error().c_str());
      return 2;
    }
  }
  std::vector<std::string> diffs =
      parfait::contract::DiffContracts(a.value(), b.value());
  if (diffs.empty()) {
    std::printf("parfait-contract: contracts are identical\n");
    return 0;
  }
  std::printf("parfait-contract: %zu difference(s) (%s -> %s)\n", diffs.size(),
              path_a.c_str(), path_b.c_str());
  for (const std::string& d : diffs) {
    std::printf("  %s\n", d.c_str());
  }
  return 1;
}

int RunBuiltinCmd(const std::string& soc_id) {
  if (!parfait::contract::HasBuiltinContract(soc_id)) {
    std::fprintf(stderr,
                 "parfait-contract: no builtin contract for '%s' (use ibex_lite, "
                 "pico_lite, ibex_lite_vlm, or pico_lite_vlm)\n",
                 soc_id.c_str());
    return 2;
  }
  std::string text =
      parfait::contract::SerializeContract(parfait::contract::BuiltinContract(soc_id));
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

std::string FindingLine(const std::string& app, const std::string& soc, const Finding& f) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %s 0x%08x %s", app.c_str(), soc.c_str(), f.pc,
                FindingKindName(f.kind));
  return buf;
}

std::string DynamicLine(const std::string& app, const std::string& soc,
                        const parfait::soc::TaintLeak& leak) {
  std::string what = leak.what;
  std::replace(what.begin(), what.end(), ' ', '-');
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s %s 0x%08x dynamic:%s", app.c_str(), soc.c_str(),
                leak.pc, what.c_str());
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

int RunCheckCmd(int argc, char** argv) {
  std::string app_name = FlagValue(argc, argv, "app");
  std::string contract_path = FlagValue(argc, argv, "contract");
  if ((app_name != "ecdsa" && app_name != "hasher") || contract_path.empty()) {
    return Usage();
  }
  std::string opt_str = FlagValue(argc, argv, "opt-level");
  int opt_level = 0;
  if (!opt_str.empty()) {
    if (opt_str != "0" && opt_str != "2") {
      std::fprintf(stderr, "parfait-contract: bad --opt-level value '%s' (use 0 or 2)\n",
                   opt_str.c_str());
      return 2;
    }
    opt_level = opt_str == "2" ? 2 : 0;
  }
  ConformanceOptions options;
  options.dynamic_check = FlagSet(argc, argv, "dynamic");
  for (const char* name : {"commands", "threads"}) {
    std::string value = FlagValue(argc, argv, name);
    if (value.empty()) {
      continue;
    }
    char* end = nullptr;
    long v = std::strtol(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) {
      std::fprintf(stderr, "parfait-contract: bad --%s value '%s'\n", name, value.c_str());
      return 2;
    }
    (std::strcmp(name, "commands") == 0 ? options.commands : options.num_threads) =
        static_cast<int>(v);
  }
  std::string json_path = FlagValue(argc, argv, "json");
  std::string baseline_path = FlagValue(argc, argv, "baseline");
  bool update_baseline = FlagSet(argc, argv, "update-baseline");
  if (update_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "parfait-contract: --update-baseline requires --baseline=FILE\n");
    return 2;
  }

  auto loaded = parfait::contract::LoadContractFile(contract_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "parfait-contract: %s\n", loaded.error().c_str());
    return 2;
  }
  const LeakageContract& contract = loaded.value();

  // The contract names the target: its soc id selects the CPU kind and (via the
  // `_vlm` suffix) the variable-latency multiplier, so `check` always builds the
  // configuration the artifact describes.
  bool vlm = contract.soc.size() > 4 &&
             contract.soc.compare(contract.soc.size() - 4, 4, "_vlm") == 0;
  std::string base = vlm ? contract.soc.substr(0, contract.soc.size() - 4) : contract.soc;
  if (base != "ibex_lite" && base != "pico_lite") {
    std::fprintf(stderr, "parfait-contract: contract soc '%s' does not name a modeled SoC\n",
                 contract.soc.c_str());
    return 2;
  }

  const parfait::hsm::App& app =
      app_name == "ecdsa" ? parfait::hsm::EcdsaApp() : parfait::hsm::HasherApp();
  parfait::hsm::HsmBuildOptions build;
  build.opt_level = opt_level;
  build.cpu = base == "ibex_lite" ? parfait::soc::CpuKind::kIbexLite
                                  : parfait::soc::CpuKind::kPicoLite;
  build.variable_latency_mul = vlm;
  build.taint_tracking = options.dynamic_check;
  parfait::hsm::HsmSystem system(app, build);

  ConformanceReport report = CheckConformance(system, contract, options);
  if (!report.ok) {
    std::fprintf(stderr, "parfait-contract: %s\n", report.error.c_str());
    return 2;
  }

  std::printf("parfait-contract check %s vs %s (soc %s, O%d): %zu static finding(s)",
              app_name.c_str(), contract_path.c_str(), report.soc_id.c_str(), opt_level,
              report.lint.findings.size());
  if (options.dynamic_check) {
    std::printf(", %zu dynamic leak site(s) over %d command(s)",
                report.dynamic_leaks.size(), report.dynamic_commands);
  }
  std::printf("\n");
  for (const Finding& f : report.lint.findings) {
    std::printf("  [%s] pc 0x%08x in <%s>: %s\n", FindingKindName(f.kind), f.pc,
                f.function.c_str(), f.instr.c_str());
    for (const std::string& hop : f.provenance) {
      std::printf("      %s\n", hop.c_str());
    }
  }
  for (const parfait::soc::TaintLeak& leak : report.dynamic_leaks) {
    std::printf("  [dynamic] pc 0x%08x: %s\n", leak.pc, leak.what.c_str());
  }
  std::printf("  contract_checks=%llu instrs_analyzed=%llu\n",
              static_cast<unsigned long long>(
                  report.lint.telemetry.CounterValue("lint/contract_checks")),
              static_cast<unsigned long long>(
                  report.lint.telemetry.CounterValue("lint/instrs_analyzed")));

  // All finding keys, deduplicated (dynamic leaks repeat per execution).
  std::set<std::string> keys;
  for (const Finding& f : report.lint.findings) {
    keys.insert(FindingLine(app_name, report.soc_id, f));
  }
  for (const parfait::soc::TaintLeak& leak : report.dynamic_leaks) {
    keys.insert(DynamicLine(app_name, report.soc_id, leak));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"app\": \"" << app_name << "\",\n  \"soc\": \"" << report.soc_id
        << "\",\n  \"contract\": \"" << JsonEscape(contract_path) << "\",\n  \"findings\": [\n";
    for (size_t i = 0; i < report.lint.findings.size(); i++) {
      const Finding& f = report.lint.findings[i];
      char pc_hex[16];
      std::snprintf(pc_hex, sizeof(pc_hex), "0x%08x", f.pc);
      out << "    {\"pc\": \"" << pc_hex << "\", \"kind\": \"" << FindingKindName(f.kind)
          << "\", \"function\": \"" << JsonEscape(f.function) << "\"}"
          << (i + 1 < report.lint.findings.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"dynamic_leaks\": [\n";
    for (size_t i = 0; i < report.dynamic_leaks.size(); i++) {
      const parfait::soc::TaintLeak& leak = report.dynamic_leaks[i];
      char pc_hex[16];
      std::snprintf(pc_hex, sizeof(pc_hex), "0x%08x", leak.pc);
      out << "    {\"pc\": \"" << pc_hex << "\", \"what\": \"" << JsonEscape(leak.what)
          << "\"}" << (i + 1 < report.dynamic_leaks.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"telemetry\": " << report.telemetry.ToJson() << "\n}\n";
  }

  if (update_baseline) {
    std::set<std::string> baseline;
    std::string error;
    if (!parfait::tools::LoadBaseline(baseline_path, &baseline, &error)) {
      baseline.clear();  // A missing baseline is created from scratch.
    }
    std::vector<std::string> lines;
    std::string prefix = app_name + " " + report.soc_id + " ";
    for (const std::string& entry : baseline) {
      if (entry.rfind(prefix, 0) != 0) {
        lines.push_back(entry);
      }
    }
    lines.insert(lines.end(), keys.begin(), keys.end());
    std::sort(lines.begin(), lines.end());
    if (!parfait::tools::WriteBaselineAtomic(
            baseline_path,
            "# parfait-contract baseline: one `<app> <soc> <pc-hex> <kind>` per line.\n"
            "# Regenerate with: parfait-contract check --app=<app> --contract=<file> "
            "--baseline=<this file> --update-baseline\n",
            lines, &error)) {
      std::fprintf(stderr, "parfait-contract: %s\n", error.c_str());
      return 2;
    }
    std::printf("  baseline: updated %s (%zu entr%s)\n", baseline_path.c_str(), lines.size(),
                lines.size() == 1 ? "y" : "ies");
    return 0;
  }

  if (!baseline_path.empty()) {
    std::set<std::string> baseline;
    std::string error;
    if (!parfait::tools::LoadBaseline(baseline_path, &baseline, &error)) {
      std::fprintf(stderr, "parfait-contract: %s\n", error.c_str());
      return 2;
    }
    int fresh = 0;
    for (const std::string& key : keys) {
      if (baseline.count(key) == 0) {
        std::fprintf(stderr, "parfait-contract: NEW finding not in baseline: %s\n",
                     key.c_str());
        fresh++;
      }
    }
    if (fresh > 0) {
      return 1;
    }
    std::printf("  baseline: ok (%zu finding(s), all known)\n", keys.size());
    return 0;
  }

  return keys.empty() ? 0 : 1;
}

int RunTool(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "lint") {
    std::vector<std::string> files;
    for (int i = 2; i < argc; i++) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        files.emplace_back(argv[i]);
      }
    }
    return RunLintCmd(files);
  }
  if (cmd == "diff") {
    if (argc < 4) {
      return Usage();
    }
    return RunDiffCmd(argv[2], argv[3]);
  }
  if (cmd == "builtin") {
    if (argc < 3) {
      return Usage();
    }
    return RunBuiltinCmd(argv[2]);
  }
  if (cmd == "check") {
    return RunCheckCmd(argc, argv);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Observability knobs shared with the benches (see bench/bench_util.h).
  std::string trace_path = parfait::bench::SetupTrace(argc, argv);
  std::string telemetry_path = parfait::bench::SetupTelemetryJson(argc, argv);
  parfait::bench::SetupProfile(argc, argv);
  int rc = RunTool(argc, argv);
  parfait::bench::FinishTrace(trace_path);
  if (!parfait::bench::FinishTelemetryJson(telemetry_path, "parfait-contract")) {
    std::fprintf(stderr, "parfait-contract: failed to write %s\n", telemetry_path.c_str());
    return rc == 0 ? 2 : rc;
  }
  return rc;
}
