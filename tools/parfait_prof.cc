// parfait-prof: profile reporting and perf regression gating over the JSON the
// benches and checkers emit.
//
//   parfait-prof report <BENCH_*.json | trace.json>
//       Prints the top-spans table (per work unit), per-lane utilization, contention
//       probes, and — for files with 1-thread/N-thread legs — an Amdahl
//       serial-fraction estimate. Accepts either a bench report (with the optional
//       runtime-only "profile" section written under --profile=1) or a Chrome trace
//       written under --trace=.
//
//   parfait-prof diff <before.json> <after.json> [--max-regression=pct]
//       Compares the numeric leaves of two bench reports and exits 1 when a gated
//       metric (throughput-like: higher-better; seconds-like: lower-better — see
//       src/support/prof.h) regressed by more than the tolerance (default 5%). CI
//       runs this over BENCH_simperf.json / BENCH_parallel.json as the perf gate.
//
//   parfait-prof merge <shard1.json> ... <shardM.json> [--out=merged.json]
//       Combines the per-shard work-unit record files written by a --shards=K/M
//       bench run into one merged report (folded rows + merged telemetry), byte-
//       identical to the report an unsharded run of the same configuration writes.
//       Validates coverage: all M shards present, no duplicates, every ordinal
//       exactly once. Profiles are deliberately *not* merged — lane timelines are
//       schedule-local to each process and have no cross-process meaning; merge
//       provenance goes to stdout, never into the merged report (byte-identity).
//
// Exit codes: 0 ok, 1 regression (diff), 2 usage or unreadable/unparseable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/support/json.h"
#include "src/support/prof.h"
#include "src/support/shard.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: parfait-prof report <bench.json|trace.json>\n"
               "       parfait-prof diff <before.json> <after.json> "
               "[--max-regression=pct]\n"
               "       parfait-prof merge <shard.json>... [--out=merged.json]\n");
  return 2;
}

int RunReport(const std::string& path) {
  std::string error;
  auto root = parfait::json::ParseFile(path, &error);
  if (!root.has_value()) {
    std::fprintf(stderr, "parfait-prof: %s\n", error.c_str());
    return 2;
  }
  std::string out;
  if (!parfait::prof::RenderReport(*root, &out, &error)) {
    std::fprintf(stderr, "parfait-prof: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}

int RunDiff(const std::string& before_path, const std::string& after_path,
            double max_regression_pct) {
  std::string error;
  auto before = parfait::json::ParseFile(before_path, &error);
  if (!before.has_value()) {
    std::fprintf(stderr, "parfait-prof: %s\n", error.c_str());
    return 2;
  }
  auto after = parfait::json::ParseFile(after_path, &error);
  if (!after.has_value()) {
    std::fprintf(stderr, "parfait-prof: %s\n", error.c_str());
    return 2;
  }
  parfait::prof::DiffOptions options;
  options.max_regression_pct = max_regression_pct;
  parfait::prof::DiffResult result = parfait::prof::Diff(*before, *after, options);
  std::printf("diff %s -> %s (tolerance %.1f%%)\n", before_path.c_str(),
              after_path.c_str(), max_regression_pct);
  std::fputs(parfait::prof::RenderDiff(result).c_str(), stdout);
  return result.regressions > 0 ? 1 : 0;
}

int RunMerge(const std::vector<std::string>& paths, const std::string& out_path) {
  std::string error;
  std::vector<parfait::shard::ShardFile> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    auto root = parfait::json::ParseFile(path, &error);
    if (!root.has_value()) {
      std::fprintf(stderr, "parfait-prof: %s\n", error.c_str());
      return 2;
    }
    parfait::shard::ShardFile shard;
    if (!parfait::shard::ParseShardFile(*root, &shard, &error)) {
      std::fprintf(stderr, "parfait-prof: %s: %s\n", path.c_str(), error.c_str());
      return 2;
    }
    std::printf("merged_from: %s (shard %d/%d, %zu records)\n", path.c_str(),
                shard.spec.index, shard.spec.count, shard.records.size());
    shards.push_back(std::move(shard));
  }
  std::vector<parfait::shard::UnitRecord> records;
  if (!parfait::shard::MergeShardRecords(shards, &records, &error)) {
    std::fprintf(stderr, "parfait-prof: %s\n", error.c_str());
    return 2;
  }
  std::vector<parfait::shard::RowOutcome> rows = parfait::shard::FoldRows(records);
  std::string merged = parfait::shard::MergedReportJson(shards[0].bench, rows);
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "parfait-prof: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fwrite(merged.data(), 1, merged.size(), out);
  std::fclose(out);
  size_t failed = 0;
  for (const parfait::shard::RowOutcome& row : rows) {
    if (!row.ok) {
      failed++;
    }
  }
  std::printf("wrote %s: %zu units -> %zu rows (%zu failed)\n", out_path.c_str(),
              records.size(), rows.size(), failed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string mode = argv[1];
  // Positional args: everything not starting with "--".
  std::vector<std::string> files;
  for (int i = 2; i < argc; i++) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      files.push_back(argv[i]);
    }
  }
  if (mode == "report") {
    for (int i = 2; i < argc; i++) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        std::fprintf(stderr, "parfait-prof: unknown flag %s\n", argv[i]);
        return 2;
      }
    }
    if (files.size() != 1) {
      return Usage();
    }
    return RunReport(files[0]);
  }
  if (mode == "diff") {
    if (files.size() != 2) {
      return Usage();
    }
    const char* tolerance = "5";
    for (int i = 2; i < argc; i++) {
      if (std::strncmp(argv[i], "--max-regression=", 17) == 0) {
        tolerance = argv[i] + 17;
      } else if (std::strncmp(argv[i], "--", 2) == 0) {
        std::fprintf(stderr, "parfait-prof: unknown flag %s\n", argv[i]);
        return 2;
      }
    }
    char* end = nullptr;
    double pct = std::strtod(tolerance, &end);
    if (end == tolerance || *end != '\0' || pct < 0) {
      std::fprintf(stderr, "parfait-prof: --max-regression=%s is not a percentage\n",
                   tolerance);
      return 2;
    }
    return RunDiff(files[0], files[1], pct);
  }
  if (mode == "merge") {
    const char* out_path = "merged.json";
    for (int i = 2; i < argc; i++) {
      if (std::strncmp(argv[i], "--out=", 6) == 0) {
        out_path = argv[i] + 6;
      } else if (std::strncmp(argv[i], "--", 2) == 0) {
        std::fprintf(stderr, "parfait-prof: unknown flag %s\n", argv[i]);
        return 2;
      }
    }
    if (files.empty()) {
      return Usage();
    }
    return RunMerge(files, out_path);
  }
  return Usage();
}
