// parfait-lint: static constant-time / leakage lint over the firmware of one of
// the case-study HSM applications.
//
// Usage:
//   parfait-lint --app=ecdsa|hasher [--opt-level=0|2] [--crosscheck]
//                [--contract=FILE] [--json=FILE] [--baseline=FILE]
//                [--update-baseline] [--trace=FILE] [--telemetry-json=FILE]
//
// --opt-level selects which code generator built the linted firmware (default 0);
// running the lint over the O2 binaries gives the optimized path the same static
// leakage coverage as the O0 path.
//
// --contract=FILE lints against an explicit leakage contract (see
// tools/contracts/); the contract's soc id selects the SoC build (CPU kind plus
// the `_vlm` variable-latency-multiplier suffix), so the checked artifact is the
// single source of truth for what counts as an observation. Without the flag the
// system's builtin contract applies. --mul-policy is a deprecated alias for
// --contract=tools/contracts/<cpu>_vlm.contract and will be removed.
//
// --trace= (or the PARFAIT_TRACE environment variable) captures a Chrome trace of
// the run; --telemetry-json= dumps the global telemetry snapshot — both share the
// bench flag plumbing (bench/bench_util.h), so tool runs are observable the same
// way bench runs are.
//
// Exit codes: 0 clean (or all findings present in the baseline), 1 new findings,
// 2 analysis error. The baseline file holds one `<app> <pc-hex> <kind>` triple per
// line; CI checks the stock firmware against a checked-in (empty-findings) baseline.
// --update-baseline rewrites the baseline atomically to exactly the current findings
// (preserving other apps' entries).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/crosscheck.h"
#include "src/analysis/lint.h"
#include "src/contract/contract.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"
#include "tools/baseline.h"

namespace {

using parfait::analysis::CrossCheck;
using parfait::analysis::CrossCheckResult;
using parfait::analysis::Finding;
using parfait::analysis::FindingKindName;
using parfait::analysis::LintReport;

std::string FlagValue(int argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

bool FlagSet(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; i++) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

std::string FindingLine(const std::string& app, const Finding& f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s 0x%08x %s", app.c_str(), f.pc, FindingKindName(f.kind));
  return buf;
}

void PrintFinding(const Finding& f) {
  std::printf("  [%s] pc 0x%08x in <%s>: %s\n", FindingKindName(f.kind), f.pc,
              f.function.c_str(), f.instr.c_str());
  for (const std::string& hop : f.provenance) {
    std::printf("      %s\n", hop.c_str());
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

int RunTool(int argc, char** argv) {
  std::string app_name = FlagValue(argc, argv, "app");
  if (app_name != "ecdsa" && app_name != "hasher") {
    std::fprintf(stderr, "usage: parfait-lint --app=ecdsa|hasher [--opt-level=0|2] "
                         "[--crosscheck] [--contract=FILE] [--json=FILE] "
                         "[--baseline=FILE] [--update-baseline]\n");
    return 2;
  }
  std::string opt_str = FlagValue(argc, argv, "opt-level");
  int opt_level = 0;
  if (!opt_str.empty()) {
    if (opt_str != "0" && opt_str != "2") {
      std::fprintf(stderr, "parfait-lint: bad --opt-level value '%s' (use 0 or 2)\n",
                   opt_str.c_str());
      return 2;
    }
    opt_level = opt_str == "2" ? 2 : 0;
  }
  bool crosscheck = FlagSet(argc, argv, "crosscheck");
  std::string contract_path = FlagValue(argc, argv, "contract");
  bool mul_policy = FlagSet(argc, argv, "mul-policy");
  if (mul_policy) {
    std::fprintf(stderr,
                 "parfait-lint: warning: --mul-policy is deprecated; use "
                 "--contract=tools/contracts/<cpu>_vlm.contract (the contract artifact "
                 "now declares the multiplier's leakage)\n");
    if (!contract_path.empty()) {
      std::fprintf(stderr, "parfait-lint: --mul-policy conflicts with --contract\n");
      return 2;
    }
  }
  std::string json_path = FlagValue(argc, argv, "json");
  std::string baseline_path = FlagValue(argc, argv, "baseline");
  bool update_baseline = FlagSet(argc, argv, "update-baseline");
  if (update_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "parfait-lint: --update-baseline requires --baseline=FILE\n");
    return 2;
  }

  const parfait::hsm::App& app =
      app_name == "ecdsa" ? parfait::hsm::EcdsaApp() : parfait::hsm::HasherApp();

  parfait::hsm::HsmBuildOptions build;
  build.opt_level = opt_level;
  build.taint_tracking = crosscheck;
  build.variable_latency_mul = mul_policy;
  parfait::contract::LeakageContract explicit_contract;
  bool have_contract = false;
  if (!contract_path.empty()) {
    auto loaded = parfait::contract::LoadContractFile(contract_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "parfait-lint: %s\n", loaded.error().c_str());
      return 2;
    }
    explicit_contract = loaded.value();
    // The contract names the target SoC; build that configuration so the lint
    // checks the artifact against the system it actually describes.
    const std::string& soc = explicit_contract.soc;
    bool vlm = soc.size() > 4 && soc.compare(soc.size() - 4, 4, "_vlm") == 0;
    std::string base = vlm ? soc.substr(0, soc.size() - 4) : soc;
    if (base != "ibex_lite" && base != "pico_lite") {
      std::fprintf(stderr, "parfait-lint: contract soc '%s' does not name a modeled SoC\n",
                   soc.c_str());
      return 2;
    }
    build.cpu = base == "ibex_lite" ? parfait::soc::CpuKind::kIbexLite
                                    : parfait::soc::CpuKind::kPicoLite;
    build.variable_latency_mul = vlm;
    have_contract = true;
  }
  parfait::hsm::HsmSystem system(app, build);

  parfait::analysis::LintConfig config = parfait::analysis::ConfigForSystem(system);
  if (have_contract) {
    config.contract = explicit_contract;
  }
  LintReport report = parfait::analysis::RunLint(system.image(), config);
  if (!report.ok) {
    std::fprintf(stderr, "parfait-lint: analysis failed: %s\n", report.error.c_str());
    return 2;
  }

  std::printf("parfait-lint %s: %zu finding(s)\n", app_name.c_str(), report.findings.size());
  for (const Finding& f : report.findings) {
    PrintFinding(f);
  }
  std::printf("  instrs_analyzed=%llu fixpoint_iters=%llu caveats{loads=%llu stores=%llu "
              "secret_stores=%llu indirect=%llu recursion=%llu}\n",
              static_cast<unsigned long long>(report.telemetry.CounterValue("lint/instrs_analyzed")),
              static_cast<unsigned long long>(report.telemetry.CounterValue("lint/fixpoint_iters")),
              static_cast<unsigned long long>(report.caveats.unresolved_loads),
              static_cast<unsigned long long>(report.caveats.unresolved_stores),
              static_cast<unsigned long long>(report.caveats.unresolved_secret_stores),
              static_cast<unsigned long long>(report.caveats.unresolved_indirect_jumps),
              static_cast<unsigned long long>(report.caveats.recursion_cutoffs));

  CrossCheckResult cross;
  if (crosscheck && !report.findings.empty()) {
    cross = CrossCheck(system, report);
    std::printf("  crosscheck: %d confirmed, %d unreached, %zu unpredicted\n", cross.confirmed,
                cross.unreached, cross.unpredicted.size());
    for (const auto& item : cross.items) {
      std::printf("    pc 0x%08x %s: %s\n", item.finding.pc, FindingKindName(item.finding.kind),
                  item.confirmed ? "CONFIRMED by dynamic taint monitor" : "unreached by replay");
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"app\": \"" << app_name << "\",\n  \"findings\": [\n";
    for (size_t i = 0; i < report.findings.size(); i++) {
      const Finding& f = report.findings[i];
      char pc_hex[16];
      std::snprintf(pc_hex, sizeof(pc_hex), "0x%08x", f.pc);
      out << "    {\"pc\": \"" << pc_hex << "\", \"kind\": \"" << FindingKindName(f.kind)
          << "\", \"function\": \"" << JsonEscape(f.function) << "\", \"instr\": \""
          << JsonEscape(f.instr) << "\"}" << (i + 1 < report.findings.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"telemetry\": " << report.telemetry.ToJson() << "\n}\n";
  }

  if (update_baseline) {
    // Keep other apps' entries, replace this app's with the current findings.
    std::set<std::string> baseline;
    std::string error;
    if (!parfait::tools::LoadBaseline(baseline_path, &baseline, &error)) {
      baseline.clear();  // A missing baseline is created from scratch.
    }
    std::vector<std::string> lines;
    for (const std::string& entry : baseline) {
      if (entry.rfind(app_name + " ", 0) != 0) {
        lines.push_back(entry);
      }
    }
    for (const Finding& f : report.findings) {
      lines.push_back(FindingLine(app_name, f));
    }
    std::sort(lines.begin(), lines.end());
    if (!parfait::tools::WriteBaselineAtomic(
            baseline_path,
            "# parfait-lint baseline: one `<app> <pc-hex> <kind>` per line.\n"
            "# Regenerate with: parfait-lint --app=<app> --baseline=<this file> "
            "--update-baseline\n",
            lines, &error)) {
      std::fprintf(stderr, "parfait-lint: %s\n", error.c_str());
      return 2;
    }
    std::printf("  baseline: updated %s (%zu entr%s)\n", baseline_path.c_str(),
                lines.size(), lines.size() == 1 ? "y" : "ies");
    return 0;
  }

  if (!baseline_path.empty()) {
    std::set<std::string> baseline;
    std::string error;
    if (!parfait::tools::LoadBaseline(baseline_path, &baseline, &error)) {
      std::fprintf(stderr, "parfait-lint: %s\n", error.c_str());
      return 2;
    }
    int fresh = 0;
    for (const Finding& f : report.findings) {
      std::string key = FindingLine(app_name, f);
      if (baseline.count(key) == 0) {
        std::fprintf(stderr, "parfait-lint: NEW finding not in baseline: %s\n", key.c_str());
        fresh++;
      }
    }
    if (fresh > 0) {
      return 1;
    }
    std::printf("  baseline: ok (%zu finding(s), all known)\n", report.findings.size());
    return 0;
  }

  return report.findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Observability knobs shared with the benches: --trace=/PARFAIT_TRACE (Chrome
  // trace), --telemetry-json= (snapshot dump), --profile=1/PARFAIT_PROFILE
  // (work-unit attribution in the dump). All stay disabled-cost when unused.
  std::string trace_path = parfait::bench::SetupTrace(argc, argv);
  std::string telemetry_path = parfait::bench::SetupTelemetryJson(argc, argv);
  parfait::bench::SetupProfile(argc, argv);
  int rc = RunTool(argc, argv);
  parfait::bench::FinishTrace(trace_path);
  if (!parfait::bench::FinishTelemetryJson(telemetry_path, "parfait-lint")) {
    std::fprintf(stderr, "parfait-lint: failed to write %s\n", telemetry_path.c_str());
    return rc == 0 ? 2 : rc;
  }
  return rc;
}
