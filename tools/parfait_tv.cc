// parfait-tv: per-function translation validation of the MiniC -> RV32 compiler
// over the firmware of the case-study HSM applications.
//
// Usage:
//   parfait-tv --app=ecdsa|hasher|all [--opt-level=0|2] [--func=NAME] [--threads=N]
//              [--contract=FILE] [--json=FILE] [--baseline=FILE] [--update-baseline]
//              [--trace=FILE] [--telemetry-json=FILE]
//
// --opt-level selects which code generator's output is validated: 0 (default, the
// verified-compiler stand-in) or 2 (the optimizing generator, checked through its
// witness transformer entries and the relaxed simulation relation).
//
// --contract=FILE validates leakage preservation against an explicit contract from
// tools/contracts/ instead of the system's builtin one: unjustified instructions
// whose class bears a contract observation are classified unjustified-observation,
// and the contract-relevant sites the walk did justify are counted
// (tv/contract_sites). The contract's soc id must match the validated system.
//
// --trace= (or PARFAIT_TRACE) captures a Chrome trace; --telemetry-json= dumps the
// global telemetry snapshot — the same observability knobs the benches take, via
// bench/bench_util.h.
//
// Exit codes: 0 every function validated (or all findings present in the baseline),
// 1 findings, 2 validator error. The baseline holds one
// `<app> <pc-hex> <kind> <function>` quad per line; CI checks the stock firmware
// against the checked-in (empty) baseline, so any miscompilation — including one
// introduced by a compiler change — fails the build with a provenance chain naming
// the originating source statement.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/tv/tv.h"
#include "src/contract/contract.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"
#include "tools/baseline.h"

namespace {

using parfait::analysis::TvConfig;
using parfait::analysis::TvFinding;
using parfait::analysis::TvFindingKindName;
using parfait::analysis::TvFunctionResult;
using parfait::analysis::TvReport;

std::string FlagValue(int argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

bool FlagSet(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; i++) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

std::string FindingLine(const std::string& app, const TvFinding& f) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s 0x%08x %s %s", app.c_str(), f.pc,
                TvFindingKindName(f.kind), f.function.c_str());
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

struct AppRun {
  std::string name;
  TvReport report;
};

int RunTool(int argc, char** argv) {
  std::string app_name = FlagValue(argc, argv, "app");
  if (app_name != "ecdsa" && app_name != "hasher" && app_name != "all") {
    std::fprintf(stderr,
                 "usage: parfait-tv --app=ecdsa|hasher|all [--opt-level=0|2] "
                 "[--func=NAME] [--threads=N] [--contract=FILE] [--json=FILE] "
                 "[--baseline=FILE] [--update-baseline]\n");
    return 2;
  }
  std::string opt_str = FlagValue(argc, argv, "opt-level");
  int opt_level = 0;
  if (!opt_str.empty()) {
    if (opt_str != "0" && opt_str != "2") {
      std::fprintf(stderr, "parfait-tv: bad --opt-level value '%s' (use 0 or 2)\n",
                   opt_str.c_str());
      return 2;
    }
    opt_level = opt_str == "2" ? 2 : 0;
  }
  TvConfig config;
  config.only_function = FlagValue(argc, argv, "func");
  std::string threads = FlagValue(argc, argv, "threads");
  if (!threads.empty()) {
    char* end = nullptr;
    long v = std::strtol(threads.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) {
      std::fprintf(stderr, "parfait-tv: bad --threads value '%s'\n", threads.c_str());
      return 2;
    }
    config.num_threads = static_cast<int>(v);
  }
  std::string contract_path = FlagValue(argc, argv, "contract");
  parfait::contract::LeakageContract explicit_contract;
  if (!contract_path.empty()) {
    auto loaded = parfait::contract::LoadContractFile(contract_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "parfait-tv: %s\n", loaded.error().c_str());
      return 2;
    }
    explicit_contract = loaded.value();
    config.contract = &explicit_contract;
  }
  std::string json_path = FlagValue(argc, argv, "json");
  std::string baseline_path = FlagValue(argc, argv, "baseline");
  bool update_baseline = FlagSet(argc, argv, "update-baseline");
  if (update_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "parfait-tv: --update-baseline requires --baseline=FILE\n");
    return 2;
  }

  std::vector<std::string> app_names;
  if (app_name == "all") {
    app_names = {"hasher", "ecdsa"};
  } else {
    app_names = {app_name};
  }

  std::vector<AppRun> runs;
  for (const std::string& name : app_names) {
    const parfait::hsm::App& app =
        name == "ecdsa" ? parfait::hsm::EcdsaApp() : parfait::hsm::HasherApp();
    parfait::hsm::HsmBuildOptions build;
    build.opt_level = opt_level;
    parfait::hsm::HsmSystem system(app, build);
    AppRun run;
    run.name = name;
    run.report = parfait::analysis::ValidateSystem(system, config);
    if (!run.report.ok) {
      std::fprintf(stderr, "parfait-tv: %s: %s\n", name.c_str(), run.report.error.c_str());
      return 2;
    }
    runs.push_back(std::move(run));
  }

  size_t total_findings = 0;
  for (const AppRun& run : runs) {
    size_t validated = 0;
    for (const TvFunctionResult& fr : run.report.functions) {
      validated += fr.validated ? 1 : 0;
    }
    std::printf("parfait-tv %s: %zu function(s), %zu validated, %zu finding(s)\n",
                run.name.c_str(), run.report.functions.size(), validated,
                run.report.FindingCount());
    for (const TvFunctionResult& fr : run.report.functions) {
      for (const TvFinding& f : fr.findings) {
        std::printf("  [%s] pc 0x%08x in <%s> (line %d): %s\n", TvFindingKindName(f.kind),
                    f.pc, f.function.c_str(), f.line, f.detail.c_str());
        for (const std::string& hop : f.provenance) {
          std::printf("      %s\n", hop.c_str());
        }
      }
    }
    std::printf("  steps=%llu terms=%llu stmts=%llu secret_branches=%llu "
                "secret_addresses=%llu promoted_slots=%llu xforms=%llu "
                "unwitnessed=%llu\n",
                static_cast<unsigned long long>(run.report.telemetry.CounterValue("tv/steps")),
                static_cast<unsigned long long>(run.report.telemetry.CounterValue("tv/terms")),
                static_cast<unsigned long long>(run.report.telemetry.CounterValue("tv/stmts")),
                static_cast<unsigned long long>(
                    run.report.telemetry.CounterValue("tv/secret_branches")),
                static_cast<unsigned long long>(
                    run.report.telemetry.CounterValue("tv/secret_addresses")),
                static_cast<unsigned long long>(
                    run.report.telemetry.CounterValue("tv/promoted_slots")),
                static_cast<unsigned long long>(
                    run.report.telemetry.CounterValue("tv/xforms")),
                static_cast<unsigned long long>(
                    run.report.telemetry.CounterValue("tv/unwitnessed_functions")));
    std::printf("  contract_sites=%llu\n",
                static_cast<unsigned long long>(
                    run.report.telemetry.CounterValue("tv/contract_sites")));
    total_findings += run.report.FindingCount();
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"apps\": [\n";
    for (size_t a = 0; a < runs.size(); a++) {
      const AppRun& run = runs[a];
      out << "    {\"app\": \"" << run.name << "\", \"functions\": [\n";
      for (size_t i = 0; i < run.report.functions.size(); i++) {
        const TvFunctionResult& fr = run.report.functions[i];
        out << "      {\"name\": \"" << JsonEscape(fr.name) << "\", \"validated\": "
            << (fr.validated ? "true" : "false") << ", \"findings\": [";
        for (size_t j = 0; j < fr.findings.size(); j++) {
          const TvFinding& f = fr.findings[j];
          char pc_hex[16];
          std::snprintf(pc_hex, sizeof(pc_hex), "0x%08x", f.pc);
          out << (j > 0 ? ", " : "") << "{\"pc\": \"" << pc_hex << "\", \"kind\": \""
              << TvFindingKindName(f.kind) << "\", \"line\": " << f.line
              << ", \"detail\": \"" << JsonEscape(f.detail) << "\"}";
        }
        out << "]}" << (i + 1 < run.report.functions.size() ? "," : "") << "\n";
      }
      out << "    ], \"telemetry\": " << run.report.telemetry.ToJson() << "}"
          << (a + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  if (update_baseline) {
    std::set<std::string> baseline;
    std::string error;
    if (!parfait::tools::LoadBaseline(baseline_path, &baseline, &error)) {
      baseline.clear();  // A missing baseline is created from scratch.
    }
    std::vector<std::string> lines;
    for (const std::string& entry : baseline) {
      bool ours = false;
      for (const AppRun& run : runs) {
        if (entry.rfind(run.name + " ", 0) == 0) {
          ours = true;
          break;
        }
      }
      if (!ours) {
        lines.push_back(entry);
      }
    }
    for (const AppRun& run : runs) {
      for (const TvFunctionResult& fr : run.report.functions) {
        for (const TvFinding& f : fr.findings) {
          lines.push_back(FindingLine(run.name, f));
        }
      }
    }
    std::sort(lines.begin(), lines.end());
    if (!parfait::tools::WriteBaselineAtomic(
            baseline_path,
            "# parfait-tv baseline: one `<app> <pc-hex> <kind> <function>` per line.\n"
            "# Regenerate with: parfait-tv --app=all --baseline=<this file> "
            "--update-baseline\n",
            lines, &error)) {
      std::fprintf(stderr, "parfait-tv: %s\n", error.c_str());
      return 2;
    }
    std::printf("baseline: updated %s (%zu entr%s)\n", baseline_path.c_str(), lines.size(),
                lines.size() == 1 ? "y" : "ies");
    return 0;
  }

  if (!baseline_path.empty()) {
    std::set<std::string> baseline;
    std::string error;
    if (!parfait::tools::LoadBaseline(baseline_path, &baseline, &error)) {
      std::fprintf(stderr, "parfait-tv: %s\n", error.c_str());
      return 2;
    }
    int fresh = 0;
    for (const AppRun& run : runs) {
      for (const TvFunctionResult& fr : run.report.functions) {
        for (const TvFinding& f : fr.findings) {
          std::string key = FindingLine(run.name, f);
          if (baseline.count(key) == 0) {
            std::fprintf(stderr, "parfait-tv: NEW finding not in baseline: %s\n",
                         key.c_str());
            fresh++;
          }
        }
      }
    }
    if (fresh > 0) {
      return 1;
    }
    std::printf("baseline: ok (%zu finding(s), all known)\n", total_findings);
    return 0;
  }

  return total_findings == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Observability knobs shared with the benches (see bench/bench_util.h).
  std::string trace_path = parfait::bench::SetupTrace(argc, argv);
  std::string telemetry_path = parfait::bench::SetupTelemetryJson(argc, argv);
  parfait::bench::SetupProfile(argc, argv);
  int rc = RunTool(argc, argv);
  parfait::bench::FinishTrace(trace_path);
  if (!parfait::bench::FinishTelemetryJson(telemetry_path, "parfait-tv")) {
    std::fprintf(stderr, "parfait-tv: failed to write %s\n", telemetry_path.c_str());
    return rc == 0 ? 2 : rc;
  }
  return rc;
}
