// Shared baseline-file handling for the checker CLIs (parfait-lint, parfait-tv).
//
// A baseline is a line-oriented set of known findings: one key per line, '#'
// comments and blank lines ignored. Tools compare their findings against the set
// (exit 1 on anything new) or rewrite it with --update-baseline. Rewrites are
// atomic — written to `<path>.tmp` and renamed over the original — so a crashed or
// interrupted update never leaves a truncated baseline for CI to misread.
#ifndef PARFAIT_TOOLS_BASELINE_H_
#define PARFAIT_TOOLS_BASELINE_H_

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace parfait::tools {

// Reads the baseline at `path` into `out`. Returns false (with *error set) when the
// file cannot be opened.
inline bool LoadBaseline(const std::string& path, std::set<std::string>* out,
                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read baseline " + path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') {
      out->insert(line);
    }
  }
  return true;
}

// Atomically replaces the baseline at `path` with `header` (a '#' comment block)
// followed by `lines` in the given order.
inline bool WriteBaselineAtomic(const std::string& path, const std::string& header,
                                const std::vector<std::string>& lines,
                                std::string* error) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      *error = "cannot write " + tmp;
      return false;
    }
    out << header;
    for (const std::string& line : lines) {
      out << line << "\n";
    }
    out.flush();
    // Close explicitly and re-check: the destructor swallows close errors, which
    // would let a short write slide through to the rename below.
    out.close();
    if (out.fail()) {
      *error = "write to " + tmp + " failed";
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace parfait::tools

#endif  // PARFAIT_TOOLS_BASELINE_H_
