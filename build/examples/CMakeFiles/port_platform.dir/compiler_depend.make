# Empty compiler generated dependencies file for port_platform.
# This may be replaced when dependencies are built.
