file(REMOVE_RECURSE
  "CMakeFiles/port_platform.dir/port_platform.cpp.o"
  "CMakeFiles/port_platform.dir/port_platform.cpp.o.d"
  "port_platform"
  "port_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
