file(REMOVE_RECURSE
  "CMakeFiles/firmware_listing.dir/firmware_listing.cpp.o"
  "CMakeFiles/firmware_listing.dir/firmware_listing.cpp.o.d"
  "firmware_listing"
  "firmware_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
