# Empty dependencies file for firmware_listing.
# This may be replaced when dependencies are built.
