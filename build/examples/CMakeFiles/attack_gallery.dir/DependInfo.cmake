
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/attack_gallery.cpp" "examples/CMakeFiles/attack_gallery.dir/attack_gallery.cpp.o" "gcc" "examples/CMakeFiles/attack_gallery.dir/attack_gallery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/knox2/CMakeFiles/parfait_knox2.dir/DependInfo.cmake"
  "/root/repo/build/src/starling/CMakeFiles/parfait_starling.dir/DependInfo.cmake"
  "/root/repo/build/src/hsm/CMakeFiles/parfait_hsm.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/parfait_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/parfait_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/parfait_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/parfait_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/minicc/CMakeFiles/parfait_minicc.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/parfait_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfait_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
