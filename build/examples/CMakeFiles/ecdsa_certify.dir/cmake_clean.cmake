file(REMOVE_RECURSE
  "CMakeFiles/ecdsa_certify.dir/ecdsa_certify.cpp.o"
  "CMakeFiles/ecdsa_certify.dir/ecdsa_certify.cpp.o.d"
  "ecdsa_certify"
  "ecdsa_certify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdsa_certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
