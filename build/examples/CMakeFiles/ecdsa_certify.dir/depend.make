# Empty dependencies file for ecdsa_certify.
# This may be replaced when dependencies are built.
