file(REMOVE_RECURSE
  "CMakeFiles/crash_safety.dir/crash_safety.cpp.o"
  "CMakeFiles/crash_safety.dir/crash_safety.cpp.o.d"
  "crash_safety"
  "crash_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
