# Empty compiler generated dependencies file for crash_safety.
# This may be replaced when dependencies are built.
