file(REMOVE_RECURSE
  "CMakeFiles/parfait_platform.dir/firmware.cc.o"
  "CMakeFiles/parfait_platform.dir/firmware.cc.o.d"
  "CMakeFiles/parfait_platform.dir/model_asm.cc.o"
  "CMakeFiles/parfait_platform.dir/model_asm.cc.o.d"
  "libparfait_platform.a"
  "libparfait_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
