# Empty dependencies file for parfait_platform.
# This may be replaced when dependencies are built.
