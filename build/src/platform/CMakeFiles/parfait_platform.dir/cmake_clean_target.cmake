file(REMOVE_RECURSE
  "libparfait_platform.a"
)
