file(REMOVE_RECURSE
  "CMakeFiles/parfait_support.dir/bytes.cc.o"
  "CMakeFiles/parfait_support.dir/bytes.cc.o.d"
  "CMakeFiles/parfait_support.dir/loc.cc.o"
  "CMakeFiles/parfait_support.dir/loc.cc.o.d"
  "libparfait_support.a"
  "libparfait_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
