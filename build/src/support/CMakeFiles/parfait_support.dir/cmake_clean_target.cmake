file(REMOVE_RECURSE
  "libparfait_support.a"
)
