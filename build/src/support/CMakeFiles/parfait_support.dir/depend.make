# Empty dependencies file for parfait_support.
# This may be replaced when dependencies are built.
