file(REMOVE_RECURSE
  "libparfait_crypto.a"
)
