file(REMOVE_RECURSE
  "CMakeFiles/parfait_crypto.dir/bignum.cc.o"
  "CMakeFiles/parfait_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/parfait_crypto.dir/blake2s.cc.o"
  "CMakeFiles/parfait_crypto.dir/blake2s.cc.o.d"
  "CMakeFiles/parfait_crypto.dir/ecdsa.cc.o"
  "CMakeFiles/parfait_crypto.dir/ecdsa.cc.o.d"
  "CMakeFiles/parfait_crypto.dir/p256.cc.o"
  "CMakeFiles/parfait_crypto.dir/p256.cc.o.d"
  "CMakeFiles/parfait_crypto.dir/sha256.cc.o"
  "CMakeFiles/parfait_crypto.dir/sha256.cc.o.d"
  "libparfait_crypto.a"
  "libparfait_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
