# Empty compiler generated dependencies file for parfait_crypto.
# This may be replaced when dependencies are built.
