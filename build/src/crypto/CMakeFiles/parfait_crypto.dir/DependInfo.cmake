
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bignum.cc" "src/crypto/CMakeFiles/parfait_crypto.dir/bignum.cc.o" "gcc" "src/crypto/CMakeFiles/parfait_crypto.dir/bignum.cc.o.d"
  "/root/repo/src/crypto/blake2s.cc" "src/crypto/CMakeFiles/parfait_crypto.dir/blake2s.cc.o" "gcc" "src/crypto/CMakeFiles/parfait_crypto.dir/blake2s.cc.o.d"
  "/root/repo/src/crypto/ecdsa.cc" "src/crypto/CMakeFiles/parfait_crypto.dir/ecdsa.cc.o" "gcc" "src/crypto/CMakeFiles/parfait_crypto.dir/ecdsa.cc.o.d"
  "/root/repo/src/crypto/p256.cc" "src/crypto/CMakeFiles/parfait_crypto.dir/p256.cc.o" "gcc" "src/crypto/CMakeFiles/parfait_crypto.dir/p256.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/parfait_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/parfait_crypto.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parfait_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
