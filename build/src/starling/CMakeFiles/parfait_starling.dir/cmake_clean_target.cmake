file(REMOVE_RECURSE
  "libparfait_starling.a"
)
