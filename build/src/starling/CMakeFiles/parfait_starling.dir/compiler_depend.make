# Empty compiler generated dependencies file for parfait_starling.
# This may be replaced when dependencies are built.
