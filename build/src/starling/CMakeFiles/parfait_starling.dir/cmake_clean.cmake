file(REMOVE_RECURSE
  "CMakeFiles/parfait_starling.dir/starling.cc.o"
  "CMakeFiles/parfait_starling.dir/starling.cc.o.d"
  "libparfait_starling.a"
  "libparfait_starling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_starling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
