file(REMOVE_RECURSE
  "libparfait_hsm.a"
)
