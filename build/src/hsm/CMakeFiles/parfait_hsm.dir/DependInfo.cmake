
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsm/ecdsa_app.cc" "src/hsm/CMakeFiles/parfait_hsm.dir/ecdsa_app.cc.o" "gcc" "src/hsm/CMakeFiles/parfait_hsm.dir/ecdsa_app.cc.o.d"
  "/root/repo/src/hsm/fw_native_ecdsa.cc" "src/hsm/CMakeFiles/parfait_hsm.dir/fw_native_ecdsa.cc.o" "gcc" "src/hsm/CMakeFiles/parfait_hsm.dir/fw_native_ecdsa.cc.o.d"
  "/root/repo/src/hsm/fw_native_hasher.cc" "src/hsm/CMakeFiles/parfait_hsm.dir/fw_native_hasher.cc.o" "gcc" "src/hsm/CMakeFiles/parfait_hsm.dir/fw_native_hasher.cc.o.d"
  "/root/repo/src/hsm/hasher_app.cc" "src/hsm/CMakeFiles/parfait_hsm.dir/hasher_app.cc.o" "gcc" "src/hsm/CMakeFiles/parfait_hsm.dir/hasher_app.cc.o.d"
  "/root/repo/src/hsm/hsm_system.cc" "src/hsm/CMakeFiles/parfait_hsm.dir/hsm_system.cc.o" "gcc" "src/hsm/CMakeFiles/parfait_hsm.dir/hsm_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/parfait_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/parfait_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/parfait_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfait_support.dir/DependInfo.cmake"
  "/root/repo/build/src/minicc/CMakeFiles/parfait_minicc.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/parfait_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/parfait_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
