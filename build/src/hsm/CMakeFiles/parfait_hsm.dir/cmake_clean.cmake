file(REMOVE_RECURSE
  "CMakeFiles/parfait_hsm.dir/ecdsa_app.cc.o"
  "CMakeFiles/parfait_hsm.dir/ecdsa_app.cc.o.d"
  "CMakeFiles/parfait_hsm.dir/fw_native_ecdsa.cc.o"
  "CMakeFiles/parfait_hsm.dir/fw_native_ecdsa.cc.o.d"
  "CMakeFiles/parfait_hsm.dir/fw_native_hasher.cc.o"
  "CMakeFiles/parfait_hsm.dir/fw_native_hasher.cc.o.d"
  "CMakeFiles/parfait_hsm.dir/hasher_app.cc.o"
  "CMakeFiles/parfait_hsm.dir/hasher_app.cc.o.d"
  "CMakeFiles/parfait_hsm.dir/hsm_system.cc.o"
  "CMakeFiles/parfait_hsm.dir/hsm_system.cc.o.d"
  "libparfait_hsm.a"
  "libparfait_hsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_hsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
