# Empty compiler generated dependencies file for parfait_hsm.
# This may be replaced when dependencies are built.
