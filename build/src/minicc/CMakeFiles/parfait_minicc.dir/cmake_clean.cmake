file(REMOVE_RECURSE
  "CMakeFiles/parfait_minicc.dir/codegen.cc.o"
  "CMakeFiles/parfait_minicc.dir/codegen.cc.o.d"
  "CMakeFiles/parfait_minicc.dir/compiler.cc.o"
  "CMakeFiles/parfait_minicc.dir/compiler.cc.o.d"
  "CMakeFiles/parfait_minicc.dir/lexer.cc.o"
  "CMakeFiles/parfait_minicc.dir/lexer.cc.o.d"
  "CMakeFiles/parfait_minicc.dir/parser.cc.o"
  "CMakeFiles/parfait_minicc.dir/parser.cc.o.d"
  "libparfait_minicc.a"
  "libparfait_minicc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_minicc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
