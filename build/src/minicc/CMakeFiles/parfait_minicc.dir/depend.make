# Empty dependencies file for parfait_minicc.
# This may be replaced when dependencies are built.
