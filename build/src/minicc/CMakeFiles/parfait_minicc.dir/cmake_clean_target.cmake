file(REMOVE_RECURSE
  "libparfait_minicc.a"
)
