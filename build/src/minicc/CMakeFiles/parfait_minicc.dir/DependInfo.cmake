
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minicc/codegen.cc" "src/minicc/CMakeFiles/parfait_minicc.dir/codegen.cc.o" "gcc" "src/minicc/CMakeFiles/parfait_minicc.dir/codegen.cc.o.d"
  "/root/repo/src/minicc/compiler.cc" "src/minicc/CMakeFiles/parfait_minicc.dir/compiler.cc.o" "gcc" "src/minicc/CMakeFiles/parfait_minicc.dir/compiler.cc.o.d"
  "/root/repo/src/minicc/lexer.cc" "src/minicc/CMakeFiles/parfait_minicc.dir/lexer.cc.o" "gcc" "src/minicc/CMakeFiles/parfait_minicc.dir/lexer.cc.o.d"
  "/root/repo/src/minicc/parser.cc" "src/minicc/CMakeFiles/parfait_minicc.dir/parser.cc.o" "gcc" "src/minicc/CMakeFiles/parfait_minicc.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/riscv/CMakeFiles/parfait_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfait_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
