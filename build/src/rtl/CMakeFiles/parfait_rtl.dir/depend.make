# Empty dependencies file for parfait_rtl.
# This may be replaced when dependencies are built.
