file(REMOVE_RECURSE
  "libparfait_rtl.a"
)
