file(REMOVE_RECURSE
  "CMakeFiles/parfait_rtl.dir/sim.cc.o"
  "CMakeFiles/parfait_rtl.dir/sim.cc.o.d"
  "libparfait_rtl.a"
  "libparfait_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
