file(REMOVE_RECURSE
  "CMakeFiles/parfait_riscv.dir/assembler.cc.o"
  "CMakeFiles/parfait_riscv.dir/assembler.cc.o.d"
  "CMakeFiles/parfait_riscv.dir/disasm.cc.o"
  "CMakeFiles/parfait_riscv.dir/disasm.cc.o.d"
  "CMakeFiles/parfait_riscv.dir/isa.cc.o"
  "CMakeFiles/parfait_riscv.dir/isa.cc.o.d"
  "CMakeFiles/parfait_riscv.dir/machine.cc.o"
  "CMakeFiles/parfait_riscv.dir/machine.cc.o.d"
  "libparfait_riscv.a"
  "libparfait_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
