file(REMOVE_RECURSE
  "libparfait_riscv.a"
)
