
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/riscv/assembler.cc" "src/riscv/CMakeFiles/parfait_riscv.dir/assembler.cc.o" "gcc" "src/riscv/CMakeFiles/parfait_riscv.dir/assembler.cc.o.d"
  "/root/repo/src/riscv/disasm.cc" "src/riscv/CMakeFiles/parfait_riscv.dir/disasm.cc.o" "gcc" "src/riscv/CMakeFiles/parfait_riscv.dir/disasm.cc.o.d"
  "/root/repo/src/riscv/isa.cc" "src/riscv/CMakeFiles/parfait_riscv.dir/isa.cc.o" "gcc" "src/riscv/CMakeFiles/parfait_riscv.dir/isa.cc.o.d"
  "/root/repo/src/riscv/machine.cc" "src/riscv/CMakeFiles/parfait_riscv.dir/machine.cc.o" "gcc" "src/riscv/CMakeFiles/parfait_riscv.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/parfait_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
