# Empty dependencies file for parfait_riscv.
# This may be replaced when dependencies are built.
