# Empty compiler generated dependencies file for parfait_soc.
# This may be replaced when dependencies are built.
