
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/bus.cc" "src/soc/CMakeFiles/parfait_soc.dir/bus.cc.o" "gcc" "src/soc/CMakeFiles/parfait_soc.dir/bus.cc.o.d"
  "/root/repo/src/soc/cpu_common.cc" "src/soc/CMakeFiles/parfait_soc.dir/cpu_common.cc.o" "gcc" "src/soc/CMakeFiles/parfait_soc.dir/cpu_common.cc.o.d"
  "/root/repo/src/soc/ibex_lite.cc" "src/soc/CMakeFiles/parfait_soc.dir/ibex_lite.cc.o" "gcc" "src/soc/CMakeFiles/parfait_soc.dir/ibex_lite.cc.o.d"
  "/root/repo/src/soc/pico_lite.cc" "src/soc/CMakeFiles/parfait_soc.dir/pico_lite.cc.o" "gcc" "src/soc/CMakeFiles/parfait_soc.dir/pico_lite.cc.o.d"
  "/root/repo/src/soc/soc.cc" "src/soc/CMakeFiles/parfait_soc.dir/soc.cc.o" "gcc" "src/soc/CMakeFiles/parfait_soc.dir/soc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/parfait_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/parfait_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/parfait_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
