file(REMOVE_RECURSE
  "CMakeFiles/parfait_soc.dir/bus.cc.o"
  "CMakeFiles/parfait_soc.dir/bus.cc.o.d"
  "CMakeFiles/parfait_soc.dir/cpu_common.cc.o"
  "CMakeFiles/parfait_soc.dir/cpu_common.cc.o.d"
  "CMakeFiles/parfait_soc.dir/ibex_lite.cc.o"
  "CMakeFiles/parfait_soc.dir/ibex_lite.cc.o.d"
  "CMakeFiles/parfait_soc.dir/pico_lite.cc.o"
  "CMakeFiles/parfait_soc.dir/pico_lite.cc.o.d"
  "CMakeFiles/parfait_soc.dir/soc.cc.o"
  "CMakeFiles/parfait_soc.dir/soc.cc.o.d"
  "libparfait_soc.a"
  "libparfait_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
