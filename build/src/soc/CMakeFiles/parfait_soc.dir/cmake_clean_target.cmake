file(REMOVE_RECURSE
  "libparfait_soc.a"
)
