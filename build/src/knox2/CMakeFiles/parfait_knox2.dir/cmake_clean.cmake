file(REMOVE_RECURSE
  "CMakeFiles/parfait_knox2.dir/cosim.cc.o"
  "CMakeFiles/parfait_knox2.dir/cosim.cc.o.d"
  "CMakeFiles/parfait_knox2.dir/emulator.cc.o"
  "CMakeFiles/parfait_knox2.dir/emulator.cc.o.d"
  "CMakeFiles/parfait_knox2.dir/leakage.cc.o"
  "CMakeFiles/parfait_knox2.dir/leakage.cc.o.d"
  "libparfait_knox2.a"
  "libparfait_knox2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfait_knox2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
