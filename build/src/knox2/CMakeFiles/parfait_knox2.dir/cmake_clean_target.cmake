file(REMOVE_RECURSE
  "libparfait_knox2.a"
)
