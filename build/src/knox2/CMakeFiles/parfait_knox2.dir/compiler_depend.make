# Empty compiler generated dependencies file for parfait_knox2.
# This may be replaced when dependencies are built.
