file(REMOVE_RECURSE
  "CMakeFiles/blake2s_test.dir/blake2s_test.cc.o"
  "CMakeFiles/blake2s_test.dir/blake2s_test.cc.o.d"
  "blake2s_test"
  "blake2s_test.pdb"
  "blake2s_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blake2s_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
