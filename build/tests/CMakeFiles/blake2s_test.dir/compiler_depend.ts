# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for blake2s_test.
