# Empty compiler generated dependencies file for blake2s_test.
# This may be replaced when dependencies are built.
