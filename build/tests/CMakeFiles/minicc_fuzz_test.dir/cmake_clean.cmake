file(REMOVE_RECURSE
  "CMakeFiles/minicc_fuzz_test.dir/minicc_fuzz_test.cc.o"
  "CMakeFiles/minicc_fuzz_test.dir/minicc_fuzz_test.cc.o.d"
  "minicc_fuzz_test"
  "minicc_fuzz_test.pdb"
  "minicc_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicc_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
