# Empty dependencies file for model_asm_test.
# This may be replaced when dependencies are built.
