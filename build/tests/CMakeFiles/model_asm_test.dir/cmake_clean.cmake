file(REMOVE_RECURSE
  "CMakeFiles/model_asm_test.dir/model_asm_test.cc.o"
  "CMakeFiles/model_asm_test.dir/model_asm_test.cc.o.d"
  "model_asm_test"
  "model_asm_test.pdb"
  "model_asm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_asm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
