# Empty dependencies file for rtl_bus_test.
# This may be replaced when dependencies are built.
