file(REMOVE_RECURSE
  "CMakeFiles/rtl_bus_test.dir/rtl_bus_test.cc.o"
  "CMakeFiles/rtl_bus_test.dir/rtl_bus_test.cc.o.d"
  "rtl_bus_test"
  "rtl_bus_test.pdb"
  "rtl_bus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
