file(REMOVE_RECURSE
  "CMakeFiles/riscv_isa_test.dir/riscv_isa_test.cc.o"
  "CMakeFiles/riscv_isa_test.dir/riscv_isa_test.cc.o.d"
  "riscv_isa_test"
  "riscv_isa_test.pdb"
  "riscv_isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
