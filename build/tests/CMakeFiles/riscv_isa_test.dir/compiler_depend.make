# Empty compiler generated dependencies file for riscv_isa_test.
# This may be replaced when dependencies are built.
