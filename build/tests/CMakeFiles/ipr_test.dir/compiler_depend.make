# Empty compiler generated dependencies file for ipr_test.
# This may be replaced when dependencies are built.
