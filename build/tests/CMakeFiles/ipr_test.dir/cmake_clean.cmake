file(REMOVE_RECURSE
  "CMakeFiles/ipr_test.dir/ipr_test.cc.o"
  "CMakeFiles/ipr_test.dir/ipr_test.cc.o.d"
  "ipr_test"
  "ipr_test.pdb"
  "ipr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
