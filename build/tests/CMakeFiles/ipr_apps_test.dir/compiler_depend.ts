# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ipr_apps_test.
