# Empty dependencies file for ipr_apps_test.
# This may be replaced when dependencies are built.
