file(REMOVE_RECURSE
  "CMakeFiles/ipr_apps_test.dir/ipr_apps_test.cc.o"
  "CMakeFiles/ipr_apps_test.dir/ipr_apps_test.cc.o.d"
  "ipr_apps_test"
  "ipr_apps_test.pdb"
  "ipr_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipr_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
