file(REMOVE_RECURSE
  "CMakeFiles/riscv_machine_test.dir/riscv_machine_test.cc.o"
  "CMakeFiles/riscv_machine_test.dir/riscv_machine_test.cc.o.d"
  "riscv_machine_test"
  "riscv_machine_test.pdb"
  "riscv_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
