# Empty compiler generated dependencies file for riscv_machine_test.
# This may be replaced when dependencies are built.
