file(REMOVE_RECURSE
  "CMakeFiles/hsm_soc_test.dir/hsm_soc_test.cc.o"
  "CMakeFiles/hsm_soc_test.dir/hsm_soc_test.cc.o.d"
  "hsm_soc_test"
  "hsm_soc_test.pdb"
  "hsm_soc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsm_soc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
