# Empty dependencies file for hsm_soc_test.
# This may be replaced when dependencies are built.
