# Empty dependencies file for knox2_test.
# This may be replaced when dependencies are built.
