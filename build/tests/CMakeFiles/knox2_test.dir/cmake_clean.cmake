file(REMOVE_RECURSE
  "CMakeFiles/knox2_test.dir/knox2_test.cc.o"
  "CMakeFiles/knox2_test.dir/knox2_test.cc.o.d"
  "knox2_test"
  "knox2_test.pdb"
  "knox2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knox2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
