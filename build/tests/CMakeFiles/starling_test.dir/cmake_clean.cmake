file(REMOVE_RECURSE
  "CMakeFiles/starling_test.dir/starling_test.cc.o"
  "CMakeFiles/starling_test.dir/starling_test.cc.o.d"
  "starling_test"
  "starling_test.pdb"
  "starling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
