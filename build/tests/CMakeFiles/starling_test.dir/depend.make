# Empty dependencies file for starling_test.
# This may be replaced when dependencies are built.
