# Empty dependencies file for fw_crypto_test.
# This may be replaced when dependencies are built.
