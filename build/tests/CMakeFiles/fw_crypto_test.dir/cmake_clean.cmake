file(REMOVE_RECURSE
  "CMakeFiles/fw_crypto_test.dir/fw_crypto_test.cc.o"
  "CMakeFiles/fw_crypto_test.dir/fw_crypto_test.cc.o.d"
  "fw_crypto_test"
  "fw_crypto_test.pdb"
  "fw_crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fw_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
