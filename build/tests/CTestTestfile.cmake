# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sha256_test[1]_include.cmake")
include("/root/repo/build/tests/blake2s_test[1]_include.cmake")
include("/root/repo/build/tests/hmac_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/p256_test[1]_include.cmake")
include("/root/repo/build/tests/ecdsa_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_isa_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_machine_test[1]_include.cmake")
include("/root/repo/build/tests/minicc_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/fw_crypto_test[1]_include.cmake")
include("/root/repo/build/tests/model_asm_test[1]_include.cmake")
include("/root/repo/build/tests/hsm_soc_test[1]_include.cmake")
include("/root/repo/build/tests/ipr_test[1]_include.cmake")
include("/root/repo/build/tests/starling_test[1]_include.cmake")
include("/root/repo/build/tests/knox2_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/minicc_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_bus_test[1]_include.cmake")
include("/root/repo/build/tests/ipr_apps_test[1]_include.cmake")
