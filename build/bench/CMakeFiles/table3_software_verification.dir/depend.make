# Empty dependencies file for table3_software_verification.
# This may be replaced when dependencies are built.
