file(REMOVE_RECURSE
  "CMakeFiles/table3_software_verification.dir/table3_software_verification.cc.o"
  "CMakeFiles/table3_software_verification.dir/table3_software_verification.cc.o.d"
  "table3_software_verification"
  "table3_software_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_software_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
