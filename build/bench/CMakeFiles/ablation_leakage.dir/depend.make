# Empty dependencies file for ablation_leakage.
# This may be replaced when dependencies are built.
