file(REMOVE_RECURSE
  "CMakeFiles/attack_matrix.dir/attack_matrix.cc.o"
  "CMakeFiles/attack_matrix.dir/attack_matrix.cc.o.d"
  "attack_matrix"
  "attack_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
