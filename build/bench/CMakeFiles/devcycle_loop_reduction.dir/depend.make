# Empty dependencies file for devcycle_loop_reduction.
# This may be replaced when dependencies are built.
