file(REMOVE_RECURSE
  "CMakeFiles/devcycle_loop_reduction.dir/devcycle_loop_reduction.cc.o"
  "CMakeFiles/devcycle_loop_reduction.dir/devcycle_loop_reduction.cc.o.d"
  "devcycle_loop_reduction"
  "devcycle_loop_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devcycle_loop_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
