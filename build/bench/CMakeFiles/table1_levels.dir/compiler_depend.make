# Empty compiler generated dependencies file for table1_levels.
# This may be replaced when dependencies are built.
