file(REMOVE_RECURSE
  "CMakeFiles/table1_levels.dir/table1_levels.cc.o"
  "CMakeFiles/table1_levels.dir/table1_levels.cc.o.d"
  "table1_levels"
  "table1_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
