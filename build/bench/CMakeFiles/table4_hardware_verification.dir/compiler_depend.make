# Empty compiler generated dependencies file for table4_hardware_verification.
# This may be replaced when dependencies are built.
