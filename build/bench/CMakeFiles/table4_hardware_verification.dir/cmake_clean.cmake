file(REMOVE_RECURSE
  "CMakeFiles/table4_hardware_verification.dir/table4_hardware_verification.cc.o"
  "CMakeFiles/table4_hardware_verification.dir/table4_hardware_verification.cc.o.d"
  "table4_hardware_verification"
  "table4_hardware_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hardware_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
