# Empty dependencies file for fig11_sync_stats.
# This may be replaced when dependencies are built.
